//! The CMI network server: the server half of the Fig. 5 client/server
//! split.
//!
//! A [`NetServer`] fronts a [`CmiServer`] behind any [`Listener`]. Two
//! session engines share one protocol implementation ([`SessionCore`], an
//! I/O-free state machine that consumes decoded frames and emits encoded
//! bytes into an out-buffer):
//!
//! * [`NetBackend::Blocking`] — the original thread-per-connection engine:
//!   an accept thread hands each connection to its own session thread,
//!   which multiplexes request handling, notification push, heartbeat
//!   bookkeeping and idle timeout over a single timeout-polled read loop.
//! * [`NetBackend::Reactor`] — an event-driven engine: every connection is
//!   switched to non-blocking mode and registered with one of a small fixed
//!   pool of event-loop threads (see [`crate::reactor`]). Readiness events
//!   drive the same state machine, write interest is toggled around the
//!   bounded push window, a timer wheel replaces per-session idle
//!   sleep-polling, and the persistent queue's enqueue hook replaces
//!   tick-polling for push work.
//!
//! Robustness properties, by construction (and identical across backends —
//! the protocol logic is literally the same code):
//!
//! * **Sign-on is observable** — `Hello` / `SignOff` / disconnect drive
//!   [`Directory::set_signed_on`] through a per-user reference count, so the
//!   `SignedOn` role-assignment function (§5.3) sees exactly the users with
//!   at least one live session.
//! * **No notification is lost to a slow or dead consumer** — pushes are
//!   *copies* of queue entries; a notification leaves the persistent queue
//!   only when the client acknowledges it. The per-session push window
//!   bounds in-flight data, and anything beyond it simply stays parked in
//!   the queue.
//! * **No duplicate acknowledgement** — a session acks only sequence numbers
//!   it currently has in flight, so replayed or raced `AckNotifs` requests
//!   cannot double-ack (and cannot double-decrement the user's load figure).
//! * **Graceful drain** — shutdown stops the acceptor, lets every session
//!   flush its pending writes, sends `Goodbye`, signs users off and joins
//!   all threads.
//!
//! [`Directory::set_signed_on`]: cmi_core::directory::Directory::set_signed_on

use std::collections::{BTreeMap, BTreeSet};
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use cmi_awareness::system::CmiServer;
use cmi_awareness::viewer::AwarenessViewer;
use cmi_core::ids::UserId;
use cmi_coord::monitor::ProcessMonitor;
use cmi_coord::worklist::Worklist;
use cmi_obs::{Counter, FlightKind, ObsRegistry};

use crate::codec::{encode_frame, Frame, FrameKind, FrameReader};
use crate::transport::{
    loopback, Listener, LoopbackConnector, NetStream, TcpAcceptor,
};
use crate::window::SendWindow;
use crate::wire::{encode_push, Request, Response};

/// Which engine drives accepted sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetBackend {
    /// One OS thread per session with a timeout-polled read loop. Simple,
    /// and the right choice for small deployments or debugging — every
    /// session is an independent stack trace.
    #[default]
    Blocking,
    /// A fixed pool of event-loop threads multiplexing all sessions through
    /// readiness polling (`epoll` on Linux, `poll` elsewhere on Unix).
    /// Scales to tens of thousands of connections. On platforms without the
    /// reactor (non-Unix) this silently degrades to `Blocking`.
    Reactor,
}

/// Tuning knobs for a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Blocking backend: how often a session checks for push work /
    /// shutdown between reads. (The reactor backend is event-driven and
    /// does not tick.)
    pub tick: Duration,
    /// A session with no inbound frame for this long is closed (the client
    /// heartbeat must be comfortably shorter).
    pub idle_timeout: Duration,
    /// Maximum unacknowledged pushed notifications per session; beyond this
    /// the consumer is considered slow and further notifications stay parked
    /// in the persistent queue.
    pub push_window: usize,
    /// Hard cap on concurrent sessions; connections beyond it are refused.
    pub max_sessions: usize,
    /// The session engine. See [`NetBackend`].
    pub backend: NetBackend,
    /// Reactor backend: number of event-loop threads. Sessions are assigned
    /// round-robin at accept time.
    pub reactor_threads: usize,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            tick: Duration::from_millis(10),
            idle_timeout: Duration::from_secs(5),
            push_window: 32,
            max_sessions: 1024,
            backend: NetBackend::Blocking,
            reactor_threads: 2,
        }
    }
}

/// The server's metric series names; [`NetStats`] is a view over these
/// registry counters, so the numbers in the Prometheus exposition, the
/// wire telemetry, and `NetServer::stats()` are one set of cells.
mod series {
    pub const SESSIONS_OPENED: &str = "cmi_net_sessions_opened";
    pub const SESSIONS_CLOSED: &str = "cmi_net_sessions_closed";
    pub const FRAMES_IN: &str = "cmi_net_frames_in";
    pub const FRAMES_OUT: &str = "cmi_net_frames_out";
    pub const REQUESTS: &str = "cmi_net_requests";
    pub const PUSHES: &str = "cmi_net_pushes";
    pub const ACKED: &str = "cmi_net_acked";
    pub const PROTOCOL_ERRORS: &str = "cmi_net_protocol_errors";
    pub const IDLE_TIMEOUTS: &str = "cmi_net_idle_timeouts";
    pub const SLOW_CONSUMER_PARKS: &str = "cmi_net_slow_consumer_parks";
    pub const REFUSED_SESSIONS: &str = "cmi_net_refused_sessions";
    /// Reactor backend: event-loop iterations across all loops.
    #[cfg(unix)]
    pub const REACTOR_LOOP_ITERATIONS: &str = "cmi_reactor_loop_iterations";
    /// Reactor backend: poll wakeups that delivered at least one readiness
    /// event (the batch count; divide ready events by this for batch size).
    #[cfg(unix)]
    pub const REACTOR_READY_BATCHES: &str = "cmi_reactor_ready_batches";
    /// Reactor backend: readiness events delivered.
    #[cfg(unix)]
    pub const REACTOR_READY_EVENTS: &str = "cmi_reactor_ready_events";
    /// Reactor backend: sessions currently owned, gauged per loop
    /// (label `worker`).
    #[cfg(unix)]
    pub const REACTOR_SESSIONS: &str = "cmi_reactor_sessions";
    /// Reactor backend: latency from a cross-thread wakeup submission
    /// (queue enqueue hook, pipe readiness edge) to the owning loop
    /// picking it up.
    #[cfg(unix)]
    pub const REACTOR_WAKEUP_NS: &str = "cmi_reactor_wakeup_ns";
}

/// Registry counter handles for server activity (see [`series`]).
#[derive(Debug)]
struct StatCounters {
    sessions_opened: Counter,
    sessions_closed: Counter,
    frames_in: Counter,
    frames_out: Counter,
    requests: Counter,
    pushes: Counter,
    acked: Counter,
    protocol_errors: Counter,
    idle_timeouts: Counter,
    slow_consumer_parks: Counter,
    refused_sessions: Counter,
}

impl StatCounters {
    fn new(obs: &ObsRegistry) -> StatCounters {
        StatCounters {
            sessions_opened: obs.counter(series::SESSIONS_OPENED),
            sessions_closed: obs.counter(series::SESSIONS_CLOSED),
            frames_in: obs.counter(series::FRAMES_IN),
            frames_out: obs.counter(series::FRAMES_OUT),
            requests: obs.counter(series::REQUESTS),
            pushes: obs.counter(series::PUSHES),
            acked: obs.counter(series::ACKED),
            protocol_errors: obs.counter(series::PROTOCOL_ERRORS),
            idle_timeouts: obs.counter(series::IDLE_TIMEOUTS),
            slow_consumer_parks: obs.counter(series::SLOW_CONSUMER_PARKS),
            refused_sessions: obs.counter(series::REFUSED_SESSIONS),
        }
    }
}

/// A snapshot of [`NetServer`] statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Sessions accepted over the server's lifetime.
    pub sessions_opened: u64,
    /// Sessions that have ended.
    pub sessions_closed: u64,
    /// Frames received (any kind).
    pub frames_in: u64,
    /// Frames sent (any kind).
    pub frames_out: u64,
    /// Requests dispatched.
    pub requests: u64,
    /// Notifications pushed to subscribed sessions.
    pub pushes: u64,
    /// Notifications acknowledged by clients.
    pub acked: u64,
    /// Frames rejected by the codec (bad magic/version/checksum/oversize)
    /// or undecodable payloads.
    pub protocol_errors: u64,
    /// Sessions closed for exceeding the idle timeout.
    pub idle_timeouts: u64,
    /// Times a session's push window was full while notifications remained
    /// parked in the persistent queue (slow-consumer degradation).
    pub slow_consumer_parks: u64,
    /// Connections refused because `max_sessions` was reached.
    pub refused_sessions: u64,
}

/// Hooks a federation layer (see the `cmi-fed` crate) installs into a
/// serving [`NetServer`].
///
/// The server consults the hooks at two points:
///
/// * every decoded request is offered to [`FederationHooks::handle`] before
///   default dispatch, so the federation layer can service the peer
///   protocol (`Request::Fed*`) and intercept `ExternalEvent` to forward
///   non-owned instances to their owning node;
/// * every 0↔1 edge of a user's local signed-on session count is reported
///   through [`FederationHooks::signed_on_edge`] (outside the server's
///   sign-on lock), which drives directory gossip to peer nodes.
pub trait FederationHooks: Send + Sync {
    /// Offers a decoded request before default dispatch. Returning `Some`
    /// short-circuits the request; `None` falls through to the server's
    /// normal handling.
    fn handle(&self, req: &Request) -> Option<Response>;
    /// The user's signed-on session count on this server crossed the 0↔1
    /// edge (`on` = signed on).
    fn signed_on_edge(&self, user: UserId, on: bool);
}

struct Inner {
    cmi: Arc<CmiServer>,
    cfg: NetConfig,
    /// The `CmiServer`'s registry; all net counters live here so one
    /// snapshot covers engine, delivery, queue and transport.
    obs: Arc<ObsRegistry>,
    stop: AtomicBool,
    stats: StatCounters,
    /// Sessions signed on per user; `set_signed_on` toggles on 0↔1 edges.
    signons: Mutex<BTreeMap<UserId, usize>>,
    live_sessions: AtomicU64,
    /// Blocking backend only: live session thread handles (finished ones
    /// are reaped on every accept). The reactor backend has no per-session
    /// threads.
    session_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    transport_label: String,
    /// Federation hooks, when this server is a cluster node.
    fed: Option<Arc<dyn FederationHooks>>,
}

impl Inner {
    fn sign_on(&self, user: UserId) {
        let edge = {
            let mut map = self.signons.lock();
            let count = map.entry(user).or_insert(0);
            *count += 1;
            if *count == 1 {
                let _ = self.cmi.directory().set_signed_on(user, true);
                true
            } else {
                false
            }
        };
        if edge {
            if let Some(fed) = &self.fed {
                fed.signed_on_edge(user, true);
            }
        }
    }

    fn sign_off(&self, user: UserId) {
        let edge = {
            let mut map = self.signons.lock();
            match map.get_mut(&user) {
                Some(count) => {
                    *count = count.saturating_sub(1);
                    if *count == 0 {
                        map.remove(&user);
                        let _ = self.cmi.directory().set_signed_on(user, false);
                        true
                    } else {
                        false
                    }
                }
                None => false,
            }
        };
        if edge {
            if let Some(fed) = &self.fed {
                fed.signed_on_edge(user, false);
            }
        }
    }

    /// Session-closed accounting shared by every close path.
    fn session_closed(&self) {
        self.live_sessions.fetch_sub(1, Ordering::Relaxed);
        self.stats.sessions_closed.inc();
    }
}

/// The network front of a [`CmiServer`].
pub struct NetServer {
    inner: Arc<Inner>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    #[cfg(unix)]
    pool: Option<reactor_backend::ReactorPool>,
}

impl NetServer {
    /// Serves `cmi` behind an arbitrary listener.
    pub fn serve(cmi: Arc<CmiServer>, listener: Box<dyn Listener>, cfg: NetConfig) -> NetServer {
        NetServer::serve_with_federation(cmi, listener, cfg, None)
    }

    /// Serves `cmi` behind an arbitrary listener, with federation hooks
    /// installed when this server is one node of a cluster (see
    /// [`FederationHooks`] and the `cmi-fed` crate).
    pub fn serve_with_federation(
        cmi: Arc<CmiServer>,
        listener: Box<dyn Listener>,
        mut cfg: NetConfig,
        fed: Option<Arc<dyn FederationHooks>>,
    ) -> NetServer {
        if !cfg!(unix) {
            // The vendored reactor has no Windows realization; degrade.
            cfg.backend = NetBackend::Blocking;
        }
        let obs = Arc::clone(cmi.obs());
        let stats = StatCounters::new(&obs);
        let inner = Arc::new(Inner {
            cmi,
            cfg,
            obs,
            stop: AtomicBool::new(false),
            stats,
            signons: Mutex::new(BTreeMap::new()),
            live_sessions: AtomicU64::new(0),
            session_threads: Mutex::new(Vec::new()),
            transport_label: listener.label(),
            fed,
        });
        // Readiness-based accept: under the reactor backend, a listener
        // that can signal accept readiness (a pollable descriptor, or a
        // waker on descriptor-less transports) is owned by the first event
        // loop — there is no accept thread and no tick-polling at all. The
        // blocking backend, and listeners without a readiness source, keep
        // the polling accept thread.
        #[cfg_attr(not(unix), allow(unused_mut))]
        let mut acceptor: Option<Box<dyn Listener>> = Some(listener);
        #[cfg(unix)]
        let pool = match inner.cfg.backend {
            NetBackend::Reactor => {
                let readiness = acceptor
                    .as_ref()
                    .is_some_and(|l| l.accept_fd().is_some() || l.supports_accept_waker());
                Some(reactor_backend::ReactorPool::start(
                    inner.clone(),
                    if readiness { acceptor.take() } else { None },
                ))
            }
            NetBackend::Blocking => None,
        };
        #[cfg(unix)]
        let dispatch = match &pool {
            Some(p) => Dispatch::Reactor {
                handles: p.handles.clone(),
                next: 0,
            },
            None => Dispatch::Blocking,
        };
        #[cfg(not(unix))]
        let dispatch = Dispatch::Blocking;
        let accept_thread = acceptor.map(|listener| {
            let accept_inner = inner.clone();
            std::thread::Builder::new()
                .name("cmi-net-accept".into())
                .spawn(move || accept_loop(accept_inner, listener, dispatch))
                .expect("spawn accept thread")
        });
        NetServer {
            inner,
            accept_thread,
            #[cfg(unix)]
            pool,
        }
    }

    /// Binds a TCP listener (use port 0 for an ephemeral port) and serves on
    /// it. Returns the server and the bound address.
    pub fn bind_tcp(
        cmi: Arc<CmiServer>,
        addr: &str,
        cfg: NetConfig,
    ) -> io::Result<(NetServer, std::net::SocketAddr)> {
        let acceptor = TcpAcceptor::bind(addr)?;
        let bound = acceptor.local_addr();
        Ok((NetServer::serve(cmi, Box::new(acceptor), cfg), bound))
    }

    /// Serves over the deterministic in-memory loopback transport. The
    /// returned connector dials new connections to this server.
    pub fn serve_loopback(cmi: Arc<CmiServer>, cfg: NetConfig) -> (NetServer, LoopbackConnector) {
        let (listener, connector) = loopback();
        (NetServer::serve(cmi, Box::new(listener), cfg), connector)
    }

    /// [`NetServer::serve_loopback`] with federation hooks installed.
    pub fn serve_loopback_with_federation(
        cmi: Arc<CmiServer>,
        cfg: NetConfig,
        fed: Option<Arc<dyn FederationHooks>>,
    ) -> (NetServer, LoopbackConnector) {
        let (listener, connector) = loopback();
        (
            NetServer::serve_with_federation(cmi, Box::new(listener), cfg, fed),
            connector,
        )
    }

    /// Current statistics snapshot — a view over the shared
    /// [`ObsRegistry`], read through one registry snapshot so the fields
    /// are mutually consistent (no torn reads across counters).
    pub fn stats(&self) -> NetStats {
        let snap = self.inner.obs.snapshot();
        let c = |name: &str| snap.counter(name).unwrap_or(0);
        NetStats {
            sessions_opened: c(series::SESSIONS_OPENED),
            sessions_closed: c(series::SESSIONS_CLOSED),
            frames_in: c(series::FRAMES_IN),
            frames_out: c(series::FRAMES_OUT),
            requests: c(series::REQUESTS),
            pushes: c(series::PUSHES),
            acked: c(series::ACKED),
            protocol_errors: c(series::PROTOCOL_ERRORS),
            idle_timeouts: c(series::IDLE_TIMEOUTS),
            slow_consumer_parks: c(series::SLOW_CONSUMER_PARKS),
            refused_sessions: c(series::REFUSED_SESSIONS),
        }
    }

    /// The observability registry shared with the fronted [`CmiServer`].
    pub fn obs(&self) -> &Arc<ObsRegistry> {
        &self.inner.obs
    }

    /// The session engine actually in effect (the configured one, except on
    /// platforms where the reactor is unavailable).
    pub fn backend(&self) -> NetBackend {
        self.inner.cfg.backend
    }

    /// Number of currently live sessions.
    pub fn session_count(&self) -> usize {
        self.inner.live_sessions.load(Ordering::Relaxed) as usize
    }

    /// Users with at least one signed-on session through this server.
    pub fn signed_on_users(&self) -> Vec<UserId> {
        self.inner.signons.lock().keys().copied().collect()
    }

    /// The Fig. 5 component diagram of the fronted [`CmiServer`] extended
    /// with the live transport wiring (listener, backend, sessions, push
    /// stats).
    pub fn architecture_diagram(&self) -> String {
        let base = self.inner.cmi.architecture_diagram();
        let stats = self.stats();
        let backend = match self.inner.cfg.backend {
            NetBackend::Blocking => "blocking (thread per session)".to_owned(),
            NetBackend::Reactor => format!(
                "reactor ({} event loops)",
                self.inner.cfg.reactor_threads.max(1)
            ),
        };
        let net = format!(
            "Transport (cmi-net)\n\
             ├─ listener           : {} (wire protocol v{}, {}-byte frame header)\n\
             ├─ backend            : {}\n\
             ├─ sessions           : {} live / {} opened ({} signed-on users)\n\
             ├─ delivery push      : {} pushed, {} acked, {} parked on slow consumers\n\
             └─ robustness         : {} protocol errors rejected, {} idle timeouts\n",
            self.inner.transport_label,
            crate::codec::VERSION,
            crate::codec::HEADER_LEN,
            backend,
            self.session_count(),
            stats.sessions_opened,
            self.inner.signons.lock().len(),
            stats.pushes,
            stats.acked,
            stats.slow_consumer_parks,
            stats.protocol_errors,
            stats.idle_timeouts,
        );
        // Splice the transport block between the engine stack and the
        // clients, where Fig. 5 draws the client/server boundary.
        match base.find("Clients\n") {
            Some(idx) => format!("{}{}{}", &base[..idx], net, &base[idx..]),
            None => format!("{base}{net}"),
        }
    }

    /// Stops accepting, drains and closes every session (each sends
    /// `Goodbye` after flushing), signs users off, and joins all threads.
    pub fn shutdown(mut self) -> NetStats {
        self.stop_and_join();
        self.stats()
    }

    fn stop_and_join(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        #[cfg(unix)]
        if let Some(pool) = &self.pool {
            pool.wake_all();
        }
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        #[cfg(unix)]
        if let Some(pool) = self.pool.take() {
            pool.stop(&self.inner);
        }
        let threads: Vec<_> = self.inner.session_threads.lock().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// How the accept loop hands off connections.
enum Dispatch {
    /// Spawn a dedicated session thread (reaping finished ones first).
    Blocking,
    /// Round-robin across the reactor's event loops.
    #[cfg(unix)]
    Reactor {
        handles: Arc<Vec<reactor_backend::LoopHandle>>,
        next: usize,
    },
}

/// Admission control shared by the polling accept thread and the reactor's
/// readiness-based accept: either counts the session as opened and live
/// (returning `true`), or refuses it with accounting (the caller then
/// shuts the stream down).
fn admit_session(inner: &Inner) -> bool {
    if inner.live_sessions.load(Ordering::Relaxed) as usize >= inner.cfg.max_sessions {
        inner.stats.refused_sessions.inc();
        inner
            .obs
            .flight()
            .record(FlightKind::SessionClose, "refused: max_sessions reached");
        return false;
    }
    inner.stats.sessions_opened.inc();
    inner.obs.flight().record(
        FlightKind::SessionOpen,
        format!("accepted over {}", inner.transport_label),
    );
    inner.live_sessions.fetch_add(1, Ordering::Relaxed);
    true
}

fn accept_loop(inner: Arc<Inner>, listener: Box<dyn Listener>, mut dispatch: Dispatch) {
    let tick = inner.cfg.tick.max(Duration::from_millis(1));
    while !inner.stop.load(Ordering::SeqCst) {
        match listener.poll_accept(tick) {
            Ok(Some(stream)) => {
                if !admit_session(&inner) {
                    stream.shutdown_stream();
                    continue;
                }
                match &mut dispatch {
                    Dispatch::Blocking => {
                        // Reap finished session threads first: a long-lived
                        // server would otherwise accumulate one JoinHandle
                        // per session it ever served. Joining a finished
                        // thread is instantaneous.
                        {
                            let mut threads = inner.session_threads.lock();
                            let mut i = 0;
                            while i < threads.len() {
                                if threads[i].is_finished() {
                                    let _ = threads.swap_remove(i).join();
                                } else {
                                    i += 1;
                                }
                            }
                        }
                        let session_inner = inner.clone();
                        let handle = std::thread::Builder::new()
                            .name("cmi-net-session".into())
                            .spawn(move || {
                                blocking_session(session_inner.clone(), stream);
                                session_inner.session_closed();
                            })
                            .expect("spawn session thread");
                        inner.session_threads.lock().push(handle);
                    }
                    #[cfg(unix)]
                    Dispatch::Reactor { handles, next } => {
                        let h = &handles[*next % handles.len()];
                        *next = next.wrapping_add(1);
                        h.submit(reactor_backend::LoopCmd::NewSession(stream));
                    }
                }
            }
            Ok(None) => {}
            Err(_) => break, // listener closed
        }
    }
    listener.close();
}

/// Why a session ended.
enum Exit {
    PeerClosed,
    Protocol,
    IdleTimeout,
    Drain,
}

/// The per-session protocol state machine, shared verbatim by both
/// backends. It performs no I/O: complete inbound frames are fed to
/// [`SessionCore::handle_frame`], and every outbound frame is appended to
/// [`SessionCore::out`] for the owning engine to write (immediately, in the
/// blocking engine; on writability, in the reactor).
struct SessionCore {
    inner: Arc<Inner>,
    /// Set by a successful `Hello`.
    user: Option<UserId>,
    viewer: Option<AwarenessViewer>,
    subscribed: bool,
    /// Pushed-but-unacknowledged sequence numbers — the same bounded
    /// [`SendWindow`] the federation data plane uses for its batch and
    /// notify flights.
    in_flight: SendWindow,
    /// Whether the last push pass left notifications parked (the flight
    /// recorder logs only the park/unpark *transitions*, not every pass).
    parked: bool,
    /// Encoded frames awaiting transmission.
    out: Vec<u8>,
}

impl SessionCore {
    fn new(inner: Arc<Inner>) -> SessionCore {
        let in_flight = SendWindow::new(inner.cfg.push_window);
        SessionCore {
            inner,
            user: None,
            viewer: None,
            subscribed: false,
            in_flight,
            parked: false,
            out: Vec::new(),
        }
    }

    /// Encodes a frame into the out-buffer.
    fn queue_frame(&mut self, kind: FrameKind, payload: &[u8]) {
        self.out.extend_from_slice(&encode_frame(kind, payload));
        self.inner.stats.frames_out.inc();
    }

    /// Consumes one inbound frame. Returns `Ok(false)` on client `Goodbye`,
    /// `Err` on fatal conditions.
    fn handle_frame(&mut self, frame: Frame) -> Result<bool, Exit> {
        match frame.kind {
            FrameKind::Ping => {
                self.queue_frame(FrameKind::Pong, &[]);
                Ok(true)
            }
            FrameKind::Goodbye => Ok(false),
            FrameKind::Request => {
                self.inner.stats.requests.inc();
                let response = match Request::decode(&frame.payload) {
                    Ok(req) => self.dispatch(req),
                    Err(e) => {
                        self.inner.stats.protocol_errors.inc();
                        self.inner.obs.flight().record(
                            FlightKind::ProtocolError,
                            format!("undecodable request: {e}"),
                        );
                        Response::Err {
                            message: e.to_string(),
                        }
                    }
                };
                self.queue_frame(FrameKind::Response, &response.encode());
                Ok(true)
            }
            // Clients never send Response/Push/Pong; treat as protocol abuse.
            FrameKind::Response | FrameKind::Push | FrameKind::Pong => Err(Exit::Protocol),
        }
    }

    /// Queues pending notifications up to the window. Notifications stay in
    /// the persistent queue until acknowledged, so nothing here can lose
    /// data: a full window or a dead socket just leaves them parked.
    fn push_pending(&mut self) {
        if !self.subscribed {
            return;
        }
        let Some(user) = self.user else {
            return;
        };
        if !self.in_flight.has_room() {
            return;
        }
        let queue = self.inner.cmi.awareness().queue();
        // Everything pending for the user, oldest first; the in-flight
        // window filters what this session already sent and awaits acks for.
        let pending = queue.fetch(user, self.in_flight.capacity() + self.in_flight.len());
        let mut parked = false;
        for n in pending {
            if self.in_flight.contains(n.seq) {
                continue;
            }
            if !self.in_flight.claim(n.seq) {
                parked = true;
                break;
            }
            self.queue_frame(FrameKind::Push, &encode_push(&n));
            self.inner.stats.pushes.inc();
            // Extend the notification's detection trace (if any) with the
            // moment it crossed the wire.
            self.inner.obs.tracer().stage_for_seq(n.seq, "push");
        }
        if parked {
            self.inner.stats.slow_consumer_parks.inc();
            if !self.parked {
                self.parked = true;
                self.inner.obs.flight().record(
                    FlightKind::QueuePark,
                    format!("push window full ({} in flight)", self.in_flight.len()),
                );
            }
        } else if self.parked {
            self.parked = false;
            self.inner
                .obs
                .flight()
                .record(FlightKind::QueueUnpark, "push window drained");
        }
    }

    /// Terminal bookkeeping: sign-off, exit-reason counters, flight record.
    fn finish(&mut self, exit: Exit) {
        if let Some(user) = self.user.take() {
            self.inner.sign_off(user);
        }
        let reason = match exit {
            Exit::IdleTimeout => {
                self.inner.stats.idle_timeouts.inc();
                "idle timeout"
            }
            Exit::Protocol => {
                self.inner.stats.protocol_errors.inc();
                self.inner
                    .obs
                    .flight()
                    .record(FlightKind::ProtocolError, "session aborted: bad frame");
                "protocol error"
            }
            Exit::PeerClosed => "peer closed",
            Exit::Drain => "server drain",
        };
        self.inner
            .obs
            .flight()
            .record(FlightKind::SessionClose, reason);
    }

    fn dispatch(&mut self, req: Request) -> Response {
        let cmi = &self.inner.cmi;
        let fail = |message: String| Response::Err { message };
        // A federated node sees every request first: the hooks service the
        // peer protocol (`Fed*`) and intercept `ExternalEvent` to forward
        // events whose routing instances this node does not own.
        if let Some(fed) = &self.inner.fed {
            if let Some(resp) = fed.handle(&req) {
                return resp;
            }
        }
        match req {
            Request::Hello { user, resume: _ } => {
                let Some(id) = cmi.directory().user_by_name(&user) else {
                    return fail(format!("unknown participant {user:?}"));
                };
                if let Some(prev) = self.user.take() {
                    self.inner.sign_off(prev);
                }
                self.inner.sign_on(id);
                match AwarenessViewer::sign_on(
                    cmi.awareness().queue().clone(),
                    cmi.directory().clone(),
                    id,
                ) {
                    Ok(viewer) => {
                        self.user = Some(id);
                        self.viewer = Some(viewer);
                        Response::HelloOk { user: id.raw() }
                    }
                    Err(e) => {
                        self.inner.sign_off(id);
                        fail(e.to_string())
                    }
                }
            }
            Request::SignOff => {
                if let Some(user) = self.user.take() {
                    self.inner.sign_off(user);
                }
                self.viewer = None;
                self.subscribed = false;
                self.in_flight.clear();
                Response::Ok
            }
            Request::WorklistForUser => match self.user {
                Some(user) => match Worklist::new(cmi.coordination().clone()).for_user(user) {
                    Ok(items) => Response::WorkItems(items),
                    Err(e) => fail(e.to_string()),
                },
                None => fail("not signed on".into()),
            },
            Request::WorklistAllOpen => {
                match Worklist::new(cmi.coordination().clone()).all_open() {
                    Ok(items) => Response::WorkItems(items),
                    Err(e) => fail(e.to_string()),
                }
            }
            Request::Claim { instance } => match self.user {
                Some(user) => match Worklist::new(cmi.coordination().clone())
                    .claim(user, cmi_core::ids::ActivityInstanceId(instance))
                {
                    Ok(()) => Response::Ok,
                    Err(e) => fail(e.to_string()),
                },
                None => fail("not signed on".into()),
            },
            Request::Complete { instance } => match self.user {
                Some(user) => match Worklist::new(cmi.coordination().clone())
                    .complete(user, cmi_core::ids::ActivityInstanceId(instance))
                {
                    Ok(()) => Response::Ok,
                    Err(e) => fail(e.to_string()),
                },
                None => fail("not signed on".into()),
            },
            Request::Peek { max } => match &self.viewer {
                Some(v) => Response::Notifications(v.peek(max as usize)),
                None => fail("not signed on".into()),
            },
            Request::Take { max } => match &self.viewer {
                Some(v) => Response::Notifications(v.take(max as usize)),
                None => fail("not signed on".into()),
            },
            Request::TakePrioritized { max } => match &self.viewer {
                Some(v) => Response::Notifications(v.take_prioritized(max as usize)),
                None => fail("not signed on".into()),
            },
            Request::Digest => match &self.viewer {
                Some(v) => Response::DigestEntries(v.digest()),
                None => fail("not signed on".into()),
            },
            Request::Unread => match &self.viewer {
                Some(v) => Response::Count(v.unread() as u64),
                None => fail("not signed on".into()),
            },
            Request::ExternalEvent { source, fields } => {
                Response::Count(cmi.external_event(&source, fields) as u64)
            }
            Request::Subscribe => match self.user {
                Some(_) => {
                    self.subscribed = true;
                    Response::Ok
                }
                None => fail("not signed on".into()),
            },
            Request::AckNotifs { seqs } => {
                let Some(user) = self.user else {
                    return fail("not signed on".into());
                };
                // Free the push window for anything this session had in
                // flight; acknowledgement itself goes through `ack_exact`,
                // which only removes seqs actually pending — so a replayed
                // ack (reconnect race) is a no-op and the load figure is
                // decremented exactly once per notification. Acks for seqs
                // this session never pushed are also honored: a reconnecting
                // client flushes acks for deliveries made over its previous
                // session.
                for s in &seqs {
                    self.in_flight.release(*s);
                }
                match cmi.awareness().queue().ack_exact(user, &seqs) {
                    Ok(n) => {
                        let _ = cmi.directory().adjust_load(user, -(n as i32));
                        self.inner.stats.acked.add(n as u64);
                        let tracer = self.inner.obs.tracer();
                        for s in &seqs {
                            // No-op for seqs without a bound trace (replays,
                            // evicted traces, untraced detections).
                            tracer.stage_for_seq(*s, "ack");
                        }
                        Response::Count(n as u64)
                    }
                    Err(e) => fail(e.to_string()),
                }
            }
            Request::MonitorStats { root } => {
                let monitor = ProcessMonitor::new(cmi.store().clone(), cmi.contexts().clone());
                match monitor.stats(cmi_core::ids::ProcessInstanceId(root)) {
                    Ok(stats) => Response::Stats(stats),
                    Err(e) => fail(e.to_string()),
                }
            }
            Request::MonitorRender { root } => {
                let monitor = ProcessMonitor::new(cmi.store().clone(), cmi.contexts().clone());
                match monitor.render(cmi_core::ids::ProcessInstanceId(root)) {
                    Ok(text) => Response::Text(text),
                    Err(e) => fail(e.to_string()),
                }
            }
            Request::Telemetry {
                trace_seq,
                include_flight,
            } => {
                let obs = &self.inner.obs;
                Response::Telemetry {
                    exposition: obs.render_prometheus(),
                    trace: trace_seq
                        .and_then(|seq| obs.tracer().trace_for_seq(seq))
                        .map(|t| t.render()),
                    flight: include_flight.then(|| obs.flight().render()),
                }
            }
            Request::FedHello { .. }
            | Request::FedEvent { .. }
            | Request::FedBatch { .. }
            | Request::FedNotify { .. }
            | Request::FedGossip { .. } => {
                fail("federation is not enabled on this server".into())
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Blocking backend: one thread per session, timeout-polled reads
// ---------------------------------------------------------------------------

/// Runs one session to completion on the calling (dedicated) thread.
fn blocking_session(inner: Arc<Inner>, stream: Box<dyn NetStream>) {
    let mut core = SessionCore::new(inner);
    let exit = blocking_serve(&mut core, stream);
    core.finish(exit);
}

/// Writes everything queued in `core.out` (blocking).
fn blocking_flush(core: &mut SessionCore, writer: &mut Box<dyn NetStream>) -> io::Result<()> {
    if !core.out.is_empty() {
        writer.write_all(&core.out)?;
        writer.flush()?;
        core.out.clear();
    }
    Ok(())
}

/// Read-timeout floor for sessions with no push subscription. The tick
/// exists to pace push flushing; a session that never subscribed has no
/// push work, and incoming request data wakes the read immediately
/// regardless of the timeout — so peer links and request-only clients
/// idle at a coarse cadence instead of tick-spinning. Stop-flag notice
/// worst-cases at this floor, but shutdown also shuts the streams down,
/// which wakes the read instantly.
const IDLE_READ_FLOOR: Duration = Duration::from_millis(5);

fn blocking_serve(core: &mut SessionCore, stream: Box<dyn NetStream>) -> Exit {
    let Ok(mut writer) = stream.try_clone_stream() else {
        return Exit::PeerClosed;
    };
    let mut reader: Box<dyn NetStream> = stream;
    let live_tick = core.inner.cfg.tick;
    let idle_tick = live_tick.max(IDLE_READ_FLOOR);
    let mut read_tick = if core.subscribed { live_tick } else { idle_tick };
    if reader.set_stream_read_timeout(Some(read_tick)).is_err() {
        return Exit::PeerClosed;
    }
    let mut frames = FrameReader::new();
    let mut last_activity = Instant::now();
    loop {
        if core.inner.stop.load(Ordering::SeqCst) {
            // Graceful drain: pending pushes were flushed each pass, so a
            // Goodbye is all that remains.
            core.queue_frame(FrameKind::Goodbye, &[]);
            let _ = blocking_flush(core, &mut writer);
            reader.shutdown_stream();
            return Exit::Drain;
        }
        match frames.poll(&mut *reader) {
            Ok(Some(frame)) => {
                core.inner.stats.frames_in.inc();
                last_activity = Instant::now();
                match core.handle_frame(frame) {
                    Ok(true) => {}
                    Ok(false) => {
                        let _ = blocking_flush(core, &mut writer);
                        return Exit::PeerClosed; // client Goodbye
                    }
                    Err(exit) => return exit,
                }
            }
            Ok(None) => {}
            Err(e) => {
                return if e.kind() == io::ErrorKind::InvalidData {
                    Exit::Protocol
                } else {
                    Exit::PeerClosed
                };
            }
        }
        core.push_pending();
        if blocking_flush(core, &mut writer).is_err() {
            return Exit::PeerClosed;
        }
        // Subscribing (or unsubscribing) moves the session between the
        // tick-paced push cadence and the coarse idle cadence.
        let want = if core.subscribed { live_tick } else { idle_tick };
        if want != read_tick && reader.set_stream_read_timeout(Some(want)).is_ok() {
            read_tick = want;
        }
        if last_activity.elapsed() > core.inner.cfg.idle_timeout {
            core.queue_frame(FrameKind::Goodbye, &[]);
            let _ = blocking_flush(core, &mut writer);
            reader.shutdown_stream();
            return Exit::IdleTimeout;
        }
    }
}

// ---------------------------------------------------------------------------
// Reactor backend: a fixed pool of event loops multiplexing all sessions
// ---------------------------------------------------------------------------

#[cfg(unix)]
mod reactor_backend {
    use super::*;
    use std::sync::Weak;

    use cmi_obs::{Gauge, Histogram, LATENCY_BUCKETS_NS};

    use crate::reactor::{Event, Interest, Poller, TimerWheel, WakeQueue};
    use crate::transport::{EventSource, PipeSignal};

    /// Timer-wheel entry kind: per-session idle deadline.
    const TIMER_IDLE: u32 = 0;

    /// Upper bound on a loop's park time, so a lost wakeup degrades to a
    /// short stall instead of a hang.
    const MAX_PARK: Duration = Duration::from_millis(500);

    /// Poller token reserved for the listener's accept readiness (the
    /// poller itself reserves `u64::MAX` for wakeups; session tokens count
    /// up from zero and can never collide).
    const ACCEPT_TOKEN: u64 = u64::MAX - 1;

    /// Cross-thread work submitted to one event loop.
    pub(super) enum LoopCmd {
        /// A freshly accepted connection (already counted as opened/live).
        NewSession(Box<dyn NetStream>),
        /// The persistent queue enqueued a notification for this user; any
        /// subscribed session of theirs owned by this loop should push.
        PushWork(UserId, Instant),
        /// A loopback pipe's readable-edge waker fired for this session.
        PipeReady(u64, Instant),
        /// The listener's accept waker fired (descriptor-less transports).
        AcceptReady(Instant),
    }

    /// The submission side of one event loop (shared with the accept
    /// thread and the queue's enqueue hook).
    pub(super) struct LoopHandle {
        pub(super) cmds: Arc<WakeQueue<LoopCmd>>,
        pub(super) poller: Arc<Poller>,
    }

    impl LoopHandle {
        pub(super) fn submit(&self, cmd: LoopCmd) {
            self.cmds.push(cmd);
            self.poller.wake();
        }
    }

    /// The running pool: handles for submission plus the loop threads.
    pub(super) struct ReactorPool {
        pub(super) handles: Arc<Vec<LoopHandle>>,
        threads: Vec<std::thread::JoinHandle<()>>,
    }

    impl ReactorPool {
        /// Starts the event loops. When `listener` is given (readiness
        /// accept), the first loop owns it: accept readiness is just another
        /// poll event, and accepted sessions are dealt round-robin across
        /// all loops.
        pub(super) fn start(
            inner: Arc<Inner>,
            mut listener: Option<Box<dyn Listener>>,
        ) -> ReactorPool {
            let n = inner.cfg.reactor_threads.max(1);
            let mut handles = Vec::with_capacity(n);
            let mut parts = Vec::with_capacity(n);
            for _ in 0..n {
                let poller = Arc::new(Poller::new().expect("create reactor poller"));
                let cmds: Arc<WakeQueue<LoopCmd>> = Arc::new(WakeQueue::new());
                handles.push(LoopHandle {
                    cmds: cmds.clone(),
                    poller: poller.clone(),
                });
                parts.push((poller, cmds));
            }
            // Every loop sees the full handle vector before any loop runs,
            // so the accepting loop can distribute sessions immediately.
            let handles = Arc::new(handles);
            let mut threads = Vec::with_capacity(n);
            for (i, (poller, cmds)) in parts.into_iter().enumerate() {
                let loop_inner = inner.clone();
                let loop_handles = handles.clone();
                let loop_listener = listener.take();
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("cmi-net-loop-{i}"))
                        .spawn(move || {
                            EventLoop::new(loop_inner, poller, cmds, i, loop_handles, loop_listener)
                                .run()
                        })
                        .expect("spawn reactor event loop"),
                );
            }
            // Hook the persistent queue's enqueue edge into reactor
            // wakeups: instead of every session tick-polling `fetch`, the
            // loops are kicked exactly when there is push work. The hook
            // holds only a weak reference so it unsubscribes itself once
            // this server is gone.
            let weak: Weak<Vec<LoopHandle>> = Arc::downgrade(&handles);
            inner
                .cmi
                .awareness()
                .queue()
                .subscribe_enqueue(Box::new(move |user| match weak.upgrade() {
                    Some(handles) => {
                        let t0 = Instant::now();
                        for h in handles.iter() {
                            h.submit(LoopCmd::PushWork(user, t0));
                        }
                        true
                    }
                    None => false,
                }));
            ReactorPool { handles, threads }
        }

        /// Kicks every loop (used to make them notice the stop flag).
        pub(super) fn wake_all(&self) {
            for h in self.handles.iter() {
                h.poller.wake();
            }
        }

        /// Joins the loops, then closes (with accounting) any connection
        /// the accept thread handed over after the loops already exited.
        pub(super) fn stop(mut self, inner: &Arc<Inner>) {
            self.wake_all();
            for t in self.threads.drain(..) {
                let _ = t.join();
            }
            for h in self.handles.iter() {
                for cmd in h.cmds.drain() {
                    if let LoopCmd::NewSession(stream) = cmd {
                        stream.shutdown_stream();
                        inner.session_closed();
                    }
                }
            }
        }
    }

    /// One session as owned by an event loop.
    struct ReactorSession {
        core: SessionCore,
        /// The sole stream handle, in non-blocking mode; the loop both
        /// reads and writes it (single-threaded, so no writer lock).
        stream: Box<dyn NetStream>,
        frames: FrameReader,
        /// Kernel-pollable sources register this fd with the poller.
        fd: Option<i32>,
        /// Loopback pipes install a waker instead; kept to clear on close.
        signal: Option<PipeSignal>,
        /// Currently armed interest (fd sources only).
        interest: Interest,
        last_activity: Instant,
        /// The user this session is filed under in the loop's push index.
        indexed_user: Option<UserId>,
    }

    /// One event-loop thread: readiness events, userspace wakeups and the
    /// timer wheel drive every session state machine this loop owns.
    struct EventLoop {
        inner: Arc<Inner>,
        poller: Arc<Poller>,
        cmds: Arc<WakeQueue<LoopCmd>>,
        sessions: BTreeMap<u64, ReactorSession>,
        /// Sessions by signed-on user, for targeted push wakeups.
        by_user: BTreeMap<UserId, BTreeSet<u64>>,
        wheel: TimerWheel,
        next_token: u64,
        /// This loop's position in `handles` (self-dispatch shortcut).
        index: usize,
        /// Submission handles of every loop, for round-robin accept.
        handles: Arc<Vec<LoopHandle>>,
        /// Readiness accept: the listener this loop owns, if any.
        listener: Option<Box<dyn Listener>>,
        /// Round-robin cursor over `handles` for accepted sessions.
        next_dispatch: usize,
        iterations: Counter,
        ready_batches: Counter,
        ready_events: Counter,
        sessions_gauge: Gauge,
        wakeup_ns: Histogram,
    }

    impl EventLoop {
        fn new(
            inner: Arc<Inner>,
            poller: Arc<Poller>,
            cmds: Arc<WakeQueue<LoopCmd>>,
            index: usize,
            handles: Arc<Vec<LoopHandle>>,
            listener: Option<Box<dyn Listener>>,
        ) -> EventLoop {
            let obs = Arc::clone(&inner.obs);
            let granularity = (inner.cfg.idle_timeout / 8)
                .clamp(Duration::from_millis(1), Duration::from_millis(200));
            let worker = index.to_string();
            EventLoop {
                iterations: obs.counter(series::REACTOR_LOOP_ITERATIONS),
                ready_batches: obs.counter(series::REACTOR_READY_BATCHES),
                ready_events: obs.counter(series::REACTOR_READY_EVENTS),
                sessions_gauge: obs
                    .metrics()
                    .gauge_with(series::REACTOR_SESSIONS, &[("worker", &worker)]),
                wakeup_ns: obs.histogram(series::REACTOR_WAKEUP_NS, LATENCY_BUCKETS_NS),
                wheel: TimerWheel::new(64, granularity),
                sessions: BTreeMap::new(),
                by_user: BTreeMap::new(),
                next_token: 0,
                index,
                handles,
                listener,
                next_dispatch: 0,
                inner,
                poller,
                cmds,
            }
        }

        /// Registers the owned listener's readiness source: the listening
        /// descriptor with the poller, or — for descriptor-less transports —
        /// an accept waker that submits [`LoopCmd::AcceptReady`].
        fn install_acceptor(&mut self) {
            let Some(listener) = &self.listener else {
                return;
            };
            if let Some(fd) = listener.accept_fd() {
                if self.poller.register(fd, ACCEPT_TOKEN, Interest::READ).is_ok() {
                    return;
                }
            }
            let cmds = self.cmds.clone();
            let poller = self.poller.clone();
            listener.set_accept_waker(Some(Arc::new(move || {
                cmds.push(LoopCmd::AcceptReady(Instant::now()));
                poller.wake();
            })));
        }

        fn run(mut self) {
            self.install_acceptor();
            let mut events: Vec<Event> = Vec::new();
            let mut fired: Vec<(u64, u32)> = Vec::new();
            loop {
                self.iterations.inc();
                if self.inner.stop.load(Ordering::SeqCst) {
                    self.drain_all();
                    return;
                }
                for cmd in self.cmds.drain() {
                    match cmd {
                        LoopCmd::NewSession(stream) => self.add_session(stream),
                        LoopCmd::PushWork(user, t0) => {
                            self.observe_wakeup(t0);
                            let toks: Vec<u64> = self
                                .by_user
                                .get(&user)
                                .map(|s| s.iter().copied().collect())
                                .unwrap_or_default();
                            for tok in toks {
                                self.push_and_flush(tok);
                            }
                        }
                        LoopCmd::PipeReady(tok, t0) => {
                            self.observe_wakeup(t0);
                            self.service_readable(tok);
                        }
                        LoopCmd::AcceptReady(t0) => {
                            self.observe_wakeup(t0);
                            self.drain_accept();
                        }
                    }
                }
                let now = Instant::now();
                fired.clear();
                self.wheel.advance(now, &mut fired);
                for &(tok, kind) in &fired {
                    debug_assert_eq!(kind, TIMER_IDLE);
                    self.check_idle(tok);
                }
                self.sessions_gauge.set(self.sessions.len() as i64);
                events.clear();
                let timeout = self
                    .wheel
                    .next_timeout(Instant::now())
                    .unwrap_or(MAX_PARK)
                    .min(MAX_PARK);
                if self.poller.wait(&mut events, Some(timeout)).is_err() {
                    // A dead poller means no more readiness; fail closed.
                    self.drain_all();
                    return;
                }
                if !events.is_empty() {
                    self.ready_batches.inc();
                    self.ready_events.add(events.len() as u64);
                }
                for ev in &events {
                    if ev.token == ACCEPT_TOKEN {
                        self.drain_accept();
                        continue;
                    }
                    if ev.readable {
                        self.service_readable(ev.token);
                    }
                    if ev.writable {
                        self.flush(ev.token);
                    }
                }
            }
        }

        fn observe_wakeup(&self, t0: Instant) {
            self.wakeup_ns
                .observe(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }

        /// Accepts every pending connection (readiness accept), admitting
        /// each and dealing it round-robin across the pool — including this
        /// loop, which adds its share directly.
        fn drain_accept(&mut self) {
            loop {
                let verdict = match &self.listener {
                    Some(listener) => listener.try_accept(),
                    None => return,
                };
                match verdict {
                    Ok(Some(stream)) => {
                        if !admit_session(&self.inner) {
                            stream.shutdown_stream();
                            continue;
                        }
                        let i = self.next_dispatch % self.handles.len();
                        self.next_dispatch = self.next_dispatch.wrapping_add(1);
                        if i == self.index {
                            self.add_session(stream);
                        } else {
                            self.handles[i].submit(LoopCmd::NewSession(stream));
                        }
                    }
                    Ok(None) => return,
                    Err(_) => {
                        // Listener closed under us; release it.
                        self.close_listener();
                        return;
                    }
                }
            }
        }

        /// Deregisters and closes the owned listener, if any.
        fn close_listener(&mut self) {
            if let Some(listener) = self.listener.take() {
                if let Some(fd) = listener.accept_fd() {
                    let _ = self.poller.deregister(fd);
                }
                listener.set_accept_waker(None);
                listener.close();
            }
        }

        /// Registers a freshly accepted connection with this loop.
        fn add_session(&mut self, stream: Box<dyn NetStream>) {
            let tok = self.next_token;
            self.next_token += 1;
            if stream.set_nonblocking_stream(true).is_err() {
                self.abort_session(stream, "transport lacks non-blocking mode");
                return;
            }
            let (fd, signal) = match stream.event_source() {
                Some(EventSource::Fd(fd)) => {
                    if self.poller.register(fd, tok, Interest::READ).is_err() {
                        self.abort_session(stream, "poller registration failed");
                        return;
                    }
                    (Some(fd), None)
                }
                Some(EventSource::Signal(sig)) => (None, Some(sig)),
                None => {
                    self.abort_session(stream, "transport has no readiness source");
                    return;
                }
            };
            let now = Instant::now();
            self.sessions.insert(
                tok,
                ReactorSession {
                    core: SessionCore::new(self.inner.clone()),
                    stream,
                    frames: FrameReader::new(),
                    fd,
                    signal: None,
                    interest: Interest::READ,
                    last_activity: now,
                    indexed_user: None,
                },
            );
            self.wheel
                .schedule(now + self.inner.cfg.idle_timeout, tok, TIMER_IDLE);
            if let Some(sig) = signal {
                // Installing the waker fires it immediately if bytes raced
                // ahead of registration, so an eager Hello is never missed.
                // (Kernel sources need no such care: epoll/poll interest is
                // level-triggered.)
                let cmds = self.cmds.clone();
                let poller = self.poller.clone();
                sig.set_waker(Some(Arc::new(move || {
                    cmds.push(LoopCmd::PipeReady(tok, Instant::now()));
                    poller.wake();
                })));
                self.sessions.get_mut(&tok).expect("just inserted").signal = Some(sig);
            }
        }

        /// Closes a connection this loop could not register.
        fn abort_session(&self, stream: Box<dyn NetStream>, why: &str) {
            stream.shutdown_stream();
            self.inner
                .obs
                .flight()
                .record(FlightKind::SessionClose, format!("refused by reactor: {why}"));
            self.inner.session_closed();
        }

        /// Reads until `WouldBlock`, feeding complete frames to the state
        /// machine, then pushes pending work and flushes.
        fn service_readable(&mut self, tok: u64) {
            let exit;
            {
                let Some(s) = self.sessions.get_mut(&tok) else {
                    return;
                };
                let mut verdict = None;
                loop {
                    match s.frames.poll(&mut *s.stream) {
                        Ok(Some(frame)) => {
                            self.inner.stats.frames_in.inc();
                            s.last_activity = Instant::now();
                            match s.core.handle_frame(frame) {
                                Ok(true) => {}
                                Ok(false) => {
                                    verdict = Some(Exit::PeerClosed); // client Goodbye
                                    break;
                                }
                                Err(e) => {
                                    verdict = Some(e);
                                    break;
                                }
                            }
                        }
                        Ok(None) => break, // drained to WouldBlock
                        Err(e) => {
                            verdict = Some(if e.kind() == io::ErrorKind::InvalidData {
                                Exit::Protocol
                            } else {
                                Exit::PeerClosed
                            });
                            break;
                        }
                    }
                }
                // Acks freed window space and Subscribe wants its backlog:
                // one push pass per readable batch covers both.
                s.core.push_pending();
                exit = verdict;
            }
            self.reindex(tok);
            match exit {
                Some(e) => self.close_session(tok, e, false),
                None => self.flush(tok),
            }
        }

        /// Queues pending pushes for one session and flushes them.
        fn push_and_flush(&mut self, tok: u64) {
            match self.sessions.get_mut(&tok) {
                Some(s) => s.core.push_pending(),
                None => return,
            }
            self.flush(tok);
        }

        /// Writes the out-buffer until empty or `WouldBlock`, toggling
        /// write interest for kernel sources accordingly.
        fn flush(&mut self, tok: u64) {
            let mut broken = false;
            {
                let Some(s) = self.sessions.get_mut(&tok) else {
                    return;
                };
                while !s.core.out.is_empty() {
                    match s.stream.write(&s.core.out) {
                        Ok(0) => {
                            broken = true;
                            break;
                        }
                        Ok(n) => {
                            s.core.out.drain(..n);
                        }
                        Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(_) => {
                            broken = true;
                            break;
                        }
                    }
                }
                let _ = s.stream.flush();
                if let Some(fd) = s.fd {
                    let want = if s.core.out.is_empty() {
                        Interest::READ
                    } else {
                        Interest::READ_WRITE
                    };
                    if want != s.interest && self.poller.rearm(fd, tok, want).is_ok() {
                        s.interest = want;
                    }
                }
            }
            if broken {
                self.close_session(tok, Exit::PeerClosed, false);
            }
        }

        /// Fired idle timer: close a genuinely idle session, or re-arm for
        /// the remainder if there was activity since scheduling.
        fn check_idle(&mut self, tok: u64) {
            let idle = self.inner.cfg.idle_timeout;
            let since = match self.sessions.get(&tok) {
                Some(s) => s.last_activity.elapsed(),
                None => return, // stale timer for a closed session
            };
            if since >= idle {
                self.close_session(tok, Exit::IdleTimeout, true);
            } else {
                self.wheel
                    .schedule(Instant::now() + (idle - since), tok, TIMER_IDLE);
            }
        }

        /// Keeps the `by_user` push index in step with the session's
        /// signed-on user (set by Hello, cleared by SignOff).
        fn reindex(&mut self, tok: u64) {
            let Some(s) = self.sessions.get_mut(&tok) else {
                return;
            };
            if s.indexed_user == s.core.user {
                return;
            }
            if let Some(u) = s.indexed_user.take() {
                if let Some(set) = self.by_user.get_mut(&u) {
                    set.remove(&tok);
                    if set.is_empty() {
                        self.by_user.remove(&u);
                    }
                }
            }
            if let Some(u) = s.core.user {
                self.by_user.entry(u).or_default().insert(tok);
                s.indexed_user = Some(u);
            }
        }

        /// Removes a session: optional Goodbye, best-effort flush,
        /// deregistration, sign-off and accounting.
        fn close_session(&mut self, tok: u64, exit: Exit, goodbye: bool) {
            let Some(mut s) = self.sessions.remove(&tok) else {
                return;
            };
            if goodbye {
                s.core.queue_frame(FrameKind::Goodbye, &[]);
            }
            while !s.core.out.is_empty() {
                match s.stream.write(&s.core.out) {
                    Ok(0) => break,
                    Ok(n) => {
                        s.core.out.drain(..n);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => break, // includes WouldBlock: best effort only
                }
            }
            let _ = s.stream.flush();
            if let Some(fd) = s.fd {
                let _ = self.poller.deregister(fd);
            }
            if let Some(sig) = s.signal.take() {
                sig.set_waker(None);
            }
            s.stream.shutdown_stream();
            if let Some(u) = s.indexed_user.take() {
                if let Some(set) = self.by_user.get_mut(&u) {
                    set.remove(&tok);
                    if set.is_empty() {
                        self.by_user.remove(&u);
                    }
                }
            }
            s.core.finish(exit);
            self.inner.session_closed();
        }

        /// Server drain: stop accepting, then Goodbye + close every owned
        /// session.
        fn drain_all(&mut self) {
            self.close_listener();
            let toks: Vec<u64> = self.sessions.keys().copied().collect();
            for tok in toks {
                self.close_session(tok, Exit::Drain, true);
            }
            self.sessions_gauge.set(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::FrameReader;

    fn raw_call(
        stream: &mut Box<dyn NetStream>,
        frames: &mut FrameReader,
        req: &Request,
    ) -> Response {
        stream
            .write_all(&encode_frame(FrameKind::Request, &req.encode()))
            .unwrap();
        loop {
            if let Some(f) = frames.poll(&mut **stream).unwrap() {
                if f.kind == FrameKind::Response {
                    return Response::decode(&f.payload).unwrap();
                }
            }
        }
    }

    fn reactor_cfg() -> NetConfig {
        NetConfig {
            backend: NetBackend::Reactor,
            ..NetConfig::default()
        }
    }

    #[test]
    fn hello_signs_on_and_disconnect_signs_off() {
        let cmi = Arc::new(CmiServer::new());
        let alice = cmi.directory().add_user("alice");
        let (server, connector) = NetServer::serve_loopback(cmi.clone(), NetConfig::default());

        let mut stream = connector.dial().unwrap();
        let mut frames = FrameReader::new();
        let resp = raw_call(
            &mut stream,
            &mut frames,
            &Request::Hello {
                user: "alice".into(),
                resume: false,
            },
        );
        assert_eq!(resp, Response::HelloOk { user: alice.raw() });
        assert!(cmi.directory().participant(alice).unwrap().signed_on);
        assert_eq!(server.signed_on_users(), vec![alice]);

        stream.shutdown_stream();
        let deadline = Instant::now() + Duration::from_secs(2);
        while cmi.directory().participant(alice).unwrap().signed_on {
            assert!(Instant::now() < deadline, "sign-off after disconnect");
            std::thread::sleep(Duration::from_millis(5));
        }
        server.shutdown();
    }

    #[test]
    fn unknown_user_hello_fails() {
        let cmi = Arc::new(CmiServer::new());
        let (server, connector) = NetServer::serve_loopback(cmi, NetConfig::default());
        let mut stream = connector.dial().unwrap();
        let mut frames = FrameReader::new();
        let resp = raw_call(
            &mut stream,
            &mut frames,
            &Request::Hello {
                user: "nobody".into(),
                resume: false,
            },
        );
        assert!(matches!(resp, Response::Err { .. }));
        server.shutdown();
    }

    #[test]
    fn idle_session_is_timed_out() {
        let cmi = Arc::new(CmiServer::new());
        let cfg = NetConfig {
            idle_timeout: Duration::from_millis(50),
            ..NetConfig::default()
        };
        let (server, connector) = NetServer::serve_loopback(cmi, cfg);
        let mut stream = connector.dial().unwrap();
        // Say nothing; the server should Goodbye and close.
        stream
            .set_stream_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut frames = FrameReader::new();
        let goodbye = loop {
            match frames.poll(&mut *stream) {
                Ok(Some(f)) => break Some(f.kind),
                Ok(None) => continue,
                Err(_) => break None,
            }
        };
        assert_eq!(goodbye, Some(FrameKind::Goodbye));
        let deadline = Instant::now() + Duration::from_secs(2);
        while server.stats().idle_timeouts == 0 {
            assert!(Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(5));
        }
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_sessions_gracefully() {
        let cmi = Arc::new(CmiServer::new());
        cmi.directory().add_user("alice");
        let (server, connector) = NetServer::serve_loopback(cmi, NetConfig::default());
        let mut stream = connector.dial().unwrap();
        let mut frames = FrameReader::new();
        raw_call(
            &mut stream,
            &mut frames,
            &Request::Hello {
                user: "alice".into(),
                resume: false,
            },
        );
        let stats = server.shutdown();
        assert_eq!(stats.sessions_opened, 1);
        assert_eq!(stats.sessions_closed, 1);
        // The client's last frame is a Goodbye.
        stream
            .set_stream_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let mut last = None;
        while let Ok(Some(f)) = frames.poll(&mut *stream) {
            last = Some(f.kind);
        }
        assert_eq!(last, Some(FrameKind::Goodbye));
    }

    #[test]
    fn finished_session_threads_are_reaped_on_accept() {
        let cmi = Arc::new(CmiServer::new());
        let (server, connector) = NetServer::serve_loopback(cmi, NetConfig::default());
        // Open and fully close a first session...
        let stream = connector.dial().unwrap();
        std::thread::sleep(Duration::from_millis(30));
        stream.shutdown_stream();
        let deadline = Instant::now() + Duration::from_secs(2);
        while server.stats().sessions_closed == 0 {
            assert!(Instant::now() < deadline, "first session closes");
            std::thread::sleep(Duration::from_millis(5));
        }
        // ...then accept a second one: the finished handle must be reaped.
        let _stream2 = connector.dial().unwrap();
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let n = server.inner.session_threads.lock().len();
            if n == 1 {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "finished session threads reaped on accept (have {n})"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        server.shutdown();
    }

    #[cfg(unix)]
    #[test]
    fn reactor_hello_signs_on_and_disconnect_signs_off() {
        let cmi = Arc::new(CmiServer::new());
        let alice = cmi.directory().add_user("alice");
        let (server, connector) = NetServer::serve_loopback(cmi.clone(), reactor_cfg());
        assert_eq!(server.backend(), NetBackend::Reactor);
        assert!(server.inner.session_threads.lock().is_empty());

        let mut stream = connector.dial().unwrap();
        let mut frames = FrameReader::new();
        let resp = raw_call(
            &mut stream,
            &mut frames,
            &Request::Hello {
                user: "alice".into(),
                resume: false,
            },
        );
        assert_eq!(resp, Response::HelloOk { user: alice.raw() });
        assert!(cmi.directory().participant(alice).unwrap().signed_on);
        assert_eq!(server.signed_on_users(), vec![alice]);
        // No session threads were spawned: the loops own the session.
        assert!(server.inner.session_threads.lock().is_empty());

        stream.shutdown_stream();
        let deadline = Instant::now() + Duration::from_secs(2);
        while cmi.directory().participant(alice).unwrap().signed_on {
            assert!(Instant::now() < deadline, "sign-off after disconnect");
            std::thread::sleep(Duration::from_millis(5));
        }
        let stats = server.shutdown();
        assert_eq!(stats.sessions_opened, 1);
        assert_eq!(stats.sessions_closed, 1);
    }

    #[cfg(unix)]
    #[test]
    fn reactor_idle_session_is_timed_out() {
        let cmi = Arc::new(CmiServer::new());
        let cfg = NetConfig {
            idle_timeout: Duration::from_millis(50),
            ..reactor_cfg()
        };
        let (server, connector) = NetServer::serve_loopback(cmi, cfg);
        let mut stream = connector.dial().unwrap();
        stream
            .set_stream_read_timeout(Some(Duration::from_secs(2)))
            .unwrap();
        let mut frames = FrameReader::new();
        let goodbye = loop {
            match frames.poll(&mut *stream) {
                Ok(Some(f)) => break Some(f.kind),
                Ok(None) => continue,
                Err(_) => break None,
            }
        };
        assert_eq!(goodbye, Some(FrameKind::Goodbye));
        let deadline = Instant::now() + Duration::from_secs(2);
        while server.stats().idle_timeouts == 0 {
            assert!(Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(5));
        }
        server.shutdown();
    }

    #[cfg(unix)]
    #[test]
    fn reactor_shutdown_drains_sessions_gracefully() {
        let cmi = Arc::new(CmiServer::new());
        cmi.directory().add_user("alice");
        let (server, connector) = NetServer::serve_loopback(cmi, reactor_cfg());
        let mut stream = connector.dial().unwrap();
        let mut frames = FrameReader::new();
        raw_call(
            &mut stream,
            &mut frames,
            &Request::Hello {
                user: "alice".into(),
                resume: false,
            },
        );
        let stats = server.shutdown();
        assert_eq!(stats.sessions_opened, 1);
        assert_eq!(stats.sessions_closed, 1);
        stream
            .set_stream_read_timeout(Some(Duration::from_millis(200)))
            .unwrap();
        let mut last = None;
        while let Ok(Some(f)) = frames.poll(&mut *stream) {
            last = Some(f.kind);
        }
        assert_eq!(last, Some(FrameKind::Goodbye));
    }

    #[cfg(unix)]
    #[test]
    fn reactor_serves_real_tcp_sockets() {
        let cmi = Arc::new(CmiServer::new());
        let alice = cmi.directory().add_user("alice");
        let (server, addr) = NetServer::bind_tcp(cmi.clone(), "127.0.0.1:0", reactor_cfg()).unwrap();
        let tcp = std::net::TcpStream::connect(addr).unwrap();
        let mut stream: Box<dyn NetStream> = Box::new(tcp);
        stream
            .set_stream_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut frames = FrameReader::new();
        let resp = raw_call(
            &mut stream,
            &mut frames,
            &Request::Hello {
                user: "alice".into(),
                resume: false,
            },
        );
        assert_eq!(resp, Response::HelloOk { user: alice.raw() });
        // The epoll path produced loop iterations and readiness batches.
        let snap = cmi.obs().snapshot();
        assert!(snap.counter(series::REACTOR_LOOP_ITERATIONS).unwrap_or(0) >= 1);
        assert!(snap.counter(series::REACTOR_READY_BATCHES).unwrap_or(0) >= 1);
        server.shutdown();
    }

    #[cfg(unix)]
    #[test]
    fn reactor_publishes_loop_metrics() {
        let cmi = Arc::new(CmiServer::new());
        cmi.directory().add_user("alice");
        let cfg = NetConfig {
            reactor_threads: 1,
            ..reactor_cfg()
        };
        let (server, connector) = NetServer::serve_loopback(cmi.clone(), cfg);
        let mut stream = connector.dial().unwrap();
        let mut frames = FrameReader::new();
        raw_call(
            &mut stream,
            &mut frames,
            &Request::Hello {
                user: "alice".into(),
                resume: false,
            },
        );
        // The per-loop session gauge reflects the one live session.
        let deadline = Instant::now() + Duration::from_secs(2);
        loop {
            let snap = cmi.obs().snapshot();
            if snap.gauge("cmi_reactor_sessions{worker=\"0\"}") == Some(1) {
                break;
            }
            assert!(Instant::now() < deadline, "sessions gauge reaches 1");
            std::thread::sleep(Duration::from_millis(5));
        }
        let snap = cmi.obs().snapshot();
        assert!(snap.counter(series::REACTOR_LOOP_ITERATIONS).unwrap_or(0) >= 1);
        // The pipe waker's submission-to-pickup latency was recorded.
        let hist = snap
            .histogram(series::REACTOR_WAKEUP_NS)
            .expect("wakeup histogram registered");
        assert!(hist.count >= 1, "pipe readiness wakeups observed");
        server.shutdown();
    }
}
