//! Transports: the stream/listener abstraction, its TCP realization, and a
//! deterministic in-memory loopback.
//!
//! Every protocol path (framing, sessions, heartbeats, reconnect) is written
//! against [`NetStream`] / [`Listener`], so the whole subsystem is testable
//! without real sockets: the loopback transport is a pair of byte pipes with
//! condvar wakeups that honors read timeouts and half-close exactly the way
//! a TCP stream does, but with no ports, no ephemeral-address races and no
//! packet non-determinism.

use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// A readiness-wakeup callback installed by a reactor event loop. Invoked
/// whenever the source *may* have become readable (data arrived, peer
/// closed); spurious invocations are fine — the loop drains to `WouldBlock`.
pub type ReadinessWaker = Arc<dyn Fn() + Send + Sync>;

/// How a stream participates in a readiness reactor (the event-driven
/// session backend). Two realizations cover the in-tree transports:
///
/// * real sockets expose their file descriptor for kernel polling
///   (`epoll`/`poll`),
/// * the in-memory loopback pipes have no descriptor; they expose a
///   [`PipeSignal`] through which the reactor installs a userspace waker
///   fired on every write/close edge. Pipe writes never block (the buffer
///   is unbounded), so write readiness is unconditional for this variant.
pub enum EventSource {
    /// A kernel-pollable file descriptor (only meaningful on Unix).
    Fd(i32),
    /// A userspace readable-edge signal (loopback pipes).
    Signal(PipeSignal),
}

/// A bidirectional, cloneable byte stream with read timeouts and an
/// optional non-blocking / readiness contract.
///
/// `try_clone_stream` exists so one clone can sit in a blocking read while
/// another writes: blocking-backend sessions use exactly two handles
/// (reader + writer). The reactor backend instead flips the stream into
/// non-blocking mode and drives one handle from readiness events.
pub trait NetStream: Read + Write + Send {
    /// An independently usable handle to the same stream.
    fn try_clone_stream(&self) -> io::Result<Box<dyn NetStream>>;
    /// Bounds how long a `read` may block (`None` = forever).
    fn set_stream_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;
    /// Closes both directions; concurrent and future reads/writes fail.
    fn shutdown_stream(&self);
    /// A human-readable peer label for diagnostics.
    fn peer_label(&self) -> String;
    /// Switches the stream between blocking and non-blocking mode. In
    /// non-blocking mode reads (and, for sockets, writes) return
    /// [`io::ErrorKind::WouldBlock`] instead of parking the thread.
    /// Transports that cannot honor the contract return `Unsupported`,
    /// which excludes them from the reactor backend.
    fn set_nonblocking_stream(&self, nonblocking: bool) -> io::Result<()> {
        let _ = nonblocking;
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "transport has no non-blocking mode",
        ))
    }
    /// The stream's readiness source for reactor registration (`None` for
    /// transports that only support the blocking backend).
    fn event_source(&self) -> Option<EventSource> {
        None
    }
}

impl NetStream for TcpStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn NetStream>> {
        Ok(Box::new(self.try_clone()?))
    }

    fn set_stream_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.set_read_timeout(timeout)
    }

    fn shutdown_stream(&self) {
        let _ = self.shutdown(std::net::Shutdown::Both);
    }

    fn peer_label(&self) -> String {
        self.peer_addr()
            .map(|a| a.to_string())
            .unwrap_or_else(|_| "tcp(?)".to_owned())
    }

    fn set_nonblocking_stream(&self, nonblocking: bool) -> io::Result<()> {
        self.set_nonblocking(nonblocking)
    }

    #[cfg(unix)]
    fn event_source(&self) -> Option<EventSource> {
        use std::os::fd::AsRawFd;
        Some(EventSource::Fd(self.as_raw_fd()))
    }
}

/// Accepts inbound connections for a server.
pub trait Listener: Send {
    /// Waits up to `timeout` for one connection. `Ok(None)` on timeout.
    fn poll_accept(&self, timeout: Duration) -> io::Result<Option<Box<dyn NetStream>>>;
    /// Stops accepting; subsequent dials fail.
    fn close(&self);
    /// A label for diagnostics ("127.0.0.1:4000", "loopback").
    fn label(&self) -> String;
    /// Non-blocking accept attempt: `Ok(None)` when no connection is
    /// pending. Used by the reactor backend's readiness-based accept.
    fn try_accept(&self) -> io::Result<Option<Box<dyn NetStream>>> {
        self.poll_accept(Duration::ZERO)
    }
    /// The pollable file descriptor of the listening socket, if the
    /// transport has one (Unix sockets). A reactor registers it and calls
    /// [`Listener::try_accept`] on readable edges instead of tick-polling.
    fn accept_fd(&self) -> Option<i32> {
        None
    }
    /// Whether [`Listener::set_accept_waker`] is supported — the userspace
    /// alternative to [`Listener::accept_fd`] for descriptor-less
    /// transports.
    fn supports_accept_waker(&self) -> bool {
        false
    }
    /// Installs (or clears) a waker fired whenever a connection may be
    /// pending. Returns `false` on transports without waker support.
    /// Installing while dials are already queued fires the waker
    /// immediately, so edges that raced registration are not lost.
    fn set_accept_waker(&self, waker: Option<ReadinessWaker>) -> bool {
        let _ = waker;
        false
    }
}

/// TCP listener adapter (non-blocking accept under a poll loop, so server
/// shutdown never hangs in `accept`).
pub struct TcpAcceptor {
    listener: TcpListener,
    addr: SocketAddr,
}

impl TcpAcceptor {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    pub fn bind(addr: impl ToSocketAddrs) -> io::Result<TcpAcceptor> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(TcpAcceptor { listener, addr })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Listener for TcpAcceptor {
    fn poll_accept(&self, timeout: Duration) -> io::Result<Option<Box<dyn NetStream>>> {
        let deadline = Instant::now() + timeout;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    stream.set_nonblocking(false)?;
                    let _ = stream.set_nodelay(true);
                    return Ok(Some(Box::new(stream)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Ok(None);
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn close(&self) {
        // Dropping the std listener closes the socket; nothing to do early —
        // the accept loop exits via the server's stop flag.
    }

    fn label(&self) -> String {
        self.addr.to_string()
    }

    #[cfg(unix)]
    fn accept_fd(&self) -> Option<i32> {
        use std::os::fd::AsRawFd;
        // The listener is already non-blocking (see `bind`), so a readable
        // edge plus `try_accept` drains every pending connection.
        Some(self.listener.as_raw_fd())
    }
}

// ---------------------------------------------------------------------------
// Loopback transport
// ---------------------------------------------------------------------------

#[derive(Default)]
struct PipeBuf {
    data: VecDeque<u8>,
    closed: bool,
    /// Reactor waker fired on every write/close edge into this buffer.
    waker: Option<ReadinessWaker>,
}

type Shared = Arc<(Mutex<PipeBuf>, Condvar)>;

/// Notifies the waker (if any) installed on `shared`, outside its lock.
fn notify_buf(shared: &Shared) {
    let (lock, cv) = &**shared;
    let waker = {
        let state = lock.lock();
        cv.notify_all();
        state.waker.clone()
    };
    if let Some(w) = waker {
        w();
    }
}

/// The userspace readiness signal of one pipe direction: the reactor
/// installs a waker on the stream's *receive* buffer, and every write or
/// close edge into that buffer fires it. See [`EventSource::Signal`].
pub struct PipeSignal {
    rx: Shared,
}

impl PipeSignal {
    /// Installs (or clears) the waker. If data is already buffered — or the
    /// pipe is already closed — the waker fires immediately, so edges that
    /// happened before registration are not lost.
    pub fn set_waker(&self, waker: Option<ReadinessWaker>) {
        let (lock, _) = &*self.rx;
        let fire = {
            let mut state = lock.lock();
            let pending = !state.data.is_empty() || state.closed;
            state.waker = waker.clone();
            pending && waker.is_some()
        };
        if fire {
            if let Some(w) = waker {
                w();
            }
        }
    }
}

/// One end of an in-memory duplex byte pipe.
pub struct PipeStream {
    rx: Shared,
    tx: Shared,
    read_timeout: Arc<Mutex<Option<Duration>>>,
    nonblocking: Arc<AtomicBool>,
    label: String,
}

/// A connected pair of pipe ends (`a` writes what `b` reads and vice versa).
pub fn pipe_pair(label: &str) -> (PipeStream, PipeStream) {
    let ab: Shared = Arc::new((Mutex::new(PipeBuf::default()), Condvar::new()));
    let ba: Shared = Arc::new((Mutex::new(PipeBuf::default()), Condvar::new()));
    (
        PipeStream {
            rx: ba.clone(),
            tx: ab.clone(),
            read_timeout: Arc::new(Mutex::new(None)),
            nonblocking: Arc::new(AtomicBool::new(false)),
            label: format!("{label}:a"),
        },
        PipeStream {
            rx: ab,
            tx: ba,
            read_timeout: Arc::new(Mutex::new(None)),
            nonblocking: Arc::new(AtomicBool::new(false)),
            label: format!("{label}:b"),
        },
    )
}

impl Read for PipeStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let timeout = *self.read_timeout.lock();
        let nonblocking = self.nonblocking.load(Ordering::Relaxed);
        let (lock, cv) = &*self.rx;
        let mut state = lock.lock();
        let deadline = timeout.map(|t| Instant::now() + t);
        while state.data.is_empty() {
            if state.closed {
                return Ok(0);
            }
            if nonblocking {
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "pipe empty"));
            }
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return Err(io::Error::new(io::ErrorKind::TimedOut, "read timeout"));
                    }
                    cv.wait_for(&mut state, d - now);
                }
                None => cv.wait(&mut state),
            }
        }
        // Drain as (up to) two contiguous memcpys rather than per-byte pops:
        // batch frames move tens of KiB per read, and a byte-at-a-time loop
        // dominates the loopback crossing cost.
        let n = buf.len().min(state.data.len());
        let (front, back) = state.data.as_slices();
        let from_front = front.len().min(n);
        buf[..from_front].copy_from_slice(&front[..from_front]);
        if n > from_front {
            buf[from_front..n].copy_from_slice(&back[..n - from_front]);
        }
        state.data.drain(..n);
        Ok(n)
    }
}

impl Write for PipeStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        {
            let (lock, _) = &*self.tx;
            let mut state = lock.lock();
            if state.closed {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed"));
            }
            state.data.extend(buf.iter().copied());
        }
        notify_buf(&self.tx);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// All slices land under one buffer lock — a frame written as
    /// `[header][payload]` via `write_frame_vectored` is appended atomically
    /// instead of costing one lock/notify round per slice.
    fn write_vectored(&mut self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
        let mut n = 0usize;
        {
            let (lock, _) = &*self.tx;
            let mut state = lock.lock();
            if state.closed {
                return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed"));
            }
            for buf in bufs {
                state.data.extend(buf.iter().copied());
                n += buf.len();
            }
        }
        notify_buf(&self.tx);
        Ok(n)
    }
}

impl NetStream for PipeStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn NetStream>> {
        Ok(Box::new(PipeStream {
            rx: self.rx.clone(),
            tx: self.tx.clone(),
            read_timeout: self.read_timeout.clone(),
            nonblocking: self.nonblocking.clone(),
            label: self.label.clone(),
        }))
    }

    fn set_stream_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        *self.read_timeout.lock() = timeout;
        Ok(())
    }

    fn shutdown_stream(&self) {
        for shared in [&self.rx, &self.tx] {
            {
                let (lock, _) = &**shared;
                lock.lock().closed = true;
            }
            notify_buf(shared);
        }
    }

    fn peer_label(&self) -> String {
        self.label.clone()
    }

    fn set_nonblocking_stream(&self, nonblocking: bool) -> io::Result<()> {
        self.nonblocking.store(nonblocking, Ordering::Relaxed);
        Ok(())
    }

    fn event_source(&self) -> Option<EventSource> {
        Some(EventSource::Signal(PipeSignal {
            rx: self.rx.clone(),
        }))
    }
}

struct HubState {
    pending: VecDeque<PipeStream>,
    closed: bool,
    dialed: u64,
    /// Reactor accept waker fired on every dial/close edge.
    waker: Option<ReadinessWaker>,
}

/// The shared state behind a loopback listener/connector pair.
pub struct LoopbackHub {
    state: Mutex<HubState>,
    cv: Condvar,
}

/// Creates a connected loopback listener + connector.
pub fn loopback() -> (LoopbackListener, LoopbackConnector) {
    let hub = Arc::new(LoopbackHub {
        state: Mutex::new(HubState {
            pending: VecDeque::new(),
            closed: false,
            dialed: 0,
            waker: None,
        }),
        cv: Condvar::new(),
    });
    (
        LoopbackListener { hub: hub.clone() },
        LoopbackConnector { hub },
    )
}

/// The server side of the loopback transport.
pub struct LoopbackListener {
    hub: Arc<LoopbackHub>,
}

impl Listener for LoopbackListener {
    fn poll_accept(&self, timeout: Duration) -> io::Result<Option<Box<dyn NetStream>>> {
        let deadline = Instant::now() + timeout;
        let mut state = self.hub.state.lock();
        loop {
            if let Some(stream) = state.pending.pop_front() {
                return Ok(Some(Box::new(stream)));
            }
            if state.closed {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionAborted,
                    "loopback closed",
                ));
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            self.hub.cv.wait_for(&mut state, deadline - now);
        }
    }

    fn close(&self) {
        let waker = {
            let mut state = self.hub.state.lock();
            state.closed = true;
            // Refuse queued-but-unaccepted dials.
            for s in state.pending.drain(..) {
                s.shutdown_stream();
            }
            self.hub.cv.notify_all();
            state.waker.clone()
        };
        if let Some(w) = waker {
            w();
        }
    }

    fn label(&self) -> String {
        "loopback".to_owned()
    }

    fn supports_accept_waker(&self) -> bool {
        true
    }

    fn set_accept_waker(&self, waker: Option<ReadinessWaker>) -> bool {
        let fire = {
            let mut state = self.hub.state.lock();
            let pending = !state.pending.is_empty() || state.closed;
            state.waker = waker.clone();
            pending && waker.is_some()
        };
        if fire {
            if let Some(w) = waker {
                w();
            }
        }
        true
    }
}

/// The client side of the loopback transport. Cloneable; each `dial` yields
/// a fresh connection.
#[derive(Clone)]
pub struct LoopbackConnector {
    hub: Arc<LoopbackHub>,
}

impl LoopbackConnector {
    /// Dials the listener, producing the client end of a fresh pipe.
    pub fn dial(&self) -> io::Result<Box<dyn NetStream>> {
        let mut state = self.hub.state.lock();
        if state.closed {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "loopback server is down",
            ));
        }
        state.dialed += 1;
        let n = state.dialed;
        let (client, server) = pipe_pair(&format!("loopback-{n}"));
        state.pending.push_back(server);
        self.hub.cv.notify_all();
        let waker = state.waker.clone();
        drop(state);
        if let Some(w) = waker {
            w();
        }
        Ok(Box::new(client))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipe_carries_bytes_and_honors_timeout() {
        let (mut a, mut b) = pipe_pair("t");
        a.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");

        b.set_stream_read_timeout(Some(Duration::from_millis(10)))
            .unwrap();
        let err = b.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn pipe_shutdown_unblocks_reader_and_fails_writer() {
        let (mut a, b) = pipe_pair("t");
        let handle = std::thread::spawn(move || {
            let mut b = b;
            let mut buf = [0u8; 1];
            b.read(&mut buf)
        });
        std::thread::sleep(Duration::from_millis(20));
        a.shutdown_stream();
        assert_eq!(handle.join().unwrap().unwrap(), 0, "EOF after shutdown");
        assert!(a.write_all(b"x").is_err());
    }

    #[test]
    fn loopback_dial_accept_roundtrip() {
        let (listener, connector) = loopback();
        let mut client = connector.dial().unwrap();
        let mut server = listener
            .poll_accept(Duration::from_millis(100))
            .unwrap()
            .unwrap();
        client.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        server.write_all(b"pong").unwrap();
        client.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn closed_loopback_refuses_dials() {
        let (listener, connector) = loopback();
        listener.close();
        assert!(connector.dial().is_err());
    }

    #[test]
    fn tcp_acceptor_accepts_real_sockets() {
        let acceptor = TcpAcceptor::bind("127.0.0.1:0").unwrap();
        let addr = acceptor.local_addr();
        let mut client = TcpStream::connect(addr).unwrap();
        let mut server = acceptor
            .poll_accept(Duration::from_secs(2))
            .unwrap()
            .unwrap();
        client.write_all(b"abc").unwrap();
        let mut buf = [0u8; 3];
        server.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"abc");
        assert!(acceptor
            .poll_accept(Duration::from_millis(20))
            .unwrap()
            .is_none());
    }
}
