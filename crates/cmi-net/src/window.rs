//! A bounded send window: the one piece of flow-control state shared by
//! every pipelined sender in the stack.
//!
//! Three senders bound what they keep in flight the same way — the session
//! server's per-client notification push window, the federation peer link's
//! in-flight `FedBatch` window, and the notification pump's `FedNotify`
//! flight window. [`SendWindow`] is that shared mechanism: a capacity plus
//! the set of outstanding sequence numbers, with cumulative release for
//! protocols whose acknowledgements cover "everything through seq". It
//! deliberately carries no I/O and no locking — each owner embeds it in
//! whatever synchronization it already has.

use std::collections::BTreeSet;

/// A bounded set of in-flight sequence numbers (see the module docs).
#[derive(Debug, Clone)]
pub struct SendWindow {
    cap: usize,
    in_flight: BTreeSet<u64>,
}

impl SendWindow {
    /// An empty window admitting at most `cap` outstanding entries.
    pub fn new(cap: usize) -> SendWindow {
        SendWindow {
            cap,
            in_flight: BTreeSet::new(),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// How many entries are currently outstanding.
    pub fn len(&self) -> usize {
        self.in_flight.len()
    }

    /// True when nothing is outstanding.
    pub fn is_empty(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// True when another entry may be claimed.
    pub fn has_room(&self) -> bool {
        self.in_flight.len() < self.cap
    }

    /// Whether `seq` is currently outstanding.
    pub fn contains(&self, seq: u64) -> bool {
        self.in_flight.contains(&seq)
    }

    /// The oldest outstanding sequence number — what a retransmit would
    /// start from, and what a backpressure error reports.
    pub fn oldest(&self) -> Option<u64> {
        self.in_flight.iter().next().copied()
    }

    /// Claims `seq` if the window has room. Returns false (window full,
    /// nothing recorded) otherwise; re-claiming an outstanding seq is a
    /// no-op success (a retransmit does not consume extra window).
    pub fn claim(&mut self, seq: u64) -> bool {
        if self.in_flight.contains(&seq) {
            return true;
        }
        if !self.has_room() {
            return false;
        }
        self.in_flight.insert(seq);
        true
    }

    /// Releases one acknowledged seq. Returns whether it was outstanding.
    pub fn release(&mut self, seq: u64) -> bool {
        self.in_flight.remove(&seq)
    }

    /// Cumulative acknowledgement: releases every outstanding seq `<= seq`,
    /// returning how many were released.
    pub fn release_through(&mut self, seq: u64) -> usize {
        let keep = self.in_flight.split_off(&(seq + 1));
        let released = self.in_flight.len();
        self.in_flight = keep;
        released
    }

    /// Forgets everything outstanding (session reset / sign-off).
    pub fn clear(&mut self) {
        self.in_flight.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_respects_capacity_and_is_retransmit_idempotent() {
        let mut w = SendWindow::new(2);
        assert!(w.has_room());
        assert!(w.claim(10));
        assert!(w.claim(11));
        assert!(!w.has_room());
        assert!(!w.claim(12), "window full");
        assert!(w.claim(10), "re-claiming an outstanding seq is free");
        assert_eq!(w.len(), 2);
        assert_eq!(w.oldest(), Some(10));
    }

    #[test]
    fn release_and_cumulative_release() {
        let mut w = SendWindow::new(8);
        for s in [1u64, 2, 3, 5, 9] {
            assert!(w.claim(s));
        }
        assert!(w.release(3));
        assert!(!w.release(3), "double release is a no-op");
        assert_eq!(w.release_through(5), 3, "releases 1, 2, 5");
        assert_eq!(w.oldest(), Some(9));
        assert!(w.contains(9));
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.oldest(), None);
    }

    #[test]
    fn zero_capacity_never_admits() {
        let mut w = SendWindow::new(0);
        assert!(!w.has_room());
        assert!(!w.claim(1));
        assert!(w.is_empty());
    }
}
