//! The framing layer: versioned, length-prefixed, checksummed binary frames.
//!
//! This extends the hand-rolled WAL-codec approach of
//! [`cmi_awareness::queue`] to the wire: no external serialization crates,
//! every byte accounted for. A frame is
//!
//! ```text
//! offset  size  field
//! 0       2     magic  b"CM"
//! 2       1     protocol version (currently 1)
//! 3       1     frame kind
//! 4       4     payload length, little-endian (<= MAX_FRAME_LEN)
//! 8       4     CRC-32 (IEEE) of the payload, little-endian
//! 12      len   payload
//! ```
//!
//! The reader is incremental: [`FrameReader::poll`] accumulates bytes across
//! read timeouts, so a frame torn across packets (or a poll tick) is
//! reassembled, while a frame torn by a *disconnect* surfaces as
//! [`std::io::ErrorKind::UnexpectedEof`]. Oversized declarations and checksum
//! mismatches are rejected before any payload decoding happens.

use std::io::{self, IoSlice, Read, Write};

/// The two magic bytes opening every frame.
pub const MAGIC: [u8; 2] = *b"CM";
/// Protocol version carried in every frame header.
pub const VERSION: u8 = 1;
/// Header size in bytes.
pub const HEADER_LEN: usize = 12;
/// Upper bound on payload size; larger declarations are a protocol error.
pub const MAX_FRAME_LEN: u32 = 1 << 20;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A client request expecting exactly one `Response`.
    Request,
    /// The server's answer to a `Request`.
    Response,
    /// A server-initiated notification push (subscription mode).
    Push,
    /// Client liveness probe.
    Ping,
    /// Server answer to a `Ping`.
    Pong,
    /// Orderly close from either side (graceful drain / idle timeout).
    Goodbye,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Request => 0,
            FrameKind::Response => 1,
            FrameKind::Push => 2,
            FrameKind::Ping => 3,
            FrameKind::Pong => 4,
            FrameKind::Goodbye => 5,
        }
    }

    fn from_byte(b: u8) -> Option<FrameKind> {
        Some(match b {
            0 => FrameKind::Request,
            1 => FrameKind::Response,
            2 => FrameKind::Push,
            3 => FrameKind::Ping,
            4 => FrameKind::Pong,
            5 => FrameKind::Goodbye,
            _ => return None,
        })
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The frame kind from the header.
    pub kind: FrameKind,
    /// The verified payload.
    pub payload: Vec<u8>,
}

/// CRC-32 (IEEE 802.3 polynomial, reflected). Table-free bitwise variant —
/// frames are small and this keeps the codec dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Encodes a complete frame (header + payload) ready for a single write.
pub fn encode_frame(kind: FrameKind, payload: &[u8]) -> Vec<u8> {
    debug_assert!(payload.len() as u32 <= MAX_FRAME_LEN);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(kind.to_byte());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Encodes just the 12-byte frame header for `payload` on the stack — no
/// heap traffic, pairs with [`write_frame_vectored`] for the hot path where
/// the payload lives in a reusable buffer.
pub fn frame_header(kind: FrameKind, payload: &[u8]) -> [u8; HEADER_LEN] {
    debug_assert!(payload.len() as u32 <= MAX_FRAME_LEN);
    let mut h = [0u8; HEADER_LEN];
    h[0..2].copy_from_slice(&MAGIC);
    h[2] = VERSION;
    h[3] = kind.to_byte();
    h[4..8].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    h[8..12].copy_from_slice(&crc32(payload).to_le_bytes());
    h
}

/// Writes one frame as `[header][payload]` using a single vectored write
/// where the stream supports it, falling back to plain writes for the
/// remainder. Unlike [`encode_frame`] this never copies the payload into a
/// fresh allocation: the header lives on the stack and the payload is
/// borrowed, so a sender looping over a reusable encode buffer performs
/// zero per-frame heap allocations.
pub fn write_frame_vectored<W: Write + ?Sized>(
    w: &mut W,
    kind: FrameKind,
    payload: &[u8],
) -> io::Result<()> {
    let header = frame_header(kind, payload);
    let mut written = 0usize;
    let total = HEADER_LEN + payload.len();
    while written < total {
        let res = if written < HEADER_LEN {
            let bufs = [IoSlice::new(&header[written..]), IoSlice::new(payload)];
            w.write_vectored(&bufs)
        } else {
            w.write(&payload[written - HEADER_LEN..])
        };
        let n = match res {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "stream refused frame bytes",
            ));
        }
        written += n;
    }
    Ok(())
}

fn protocol_err(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Incremental frame reassembly over a (possibly timeout-polled) reader.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Parsed header fields once `buf` holds `HEADER_LEN` bytes.
    header: Option<(FrameKind, u32, u32)>,
}

impl FrameReader {
    /// A reader with no partial frame buffered.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// True if a frame is partially buffered (useful to distinguish an idle
    /// disconnect from a mid-frame one).
    pub fn mid_frame(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Reads from `r` until a full frame is assembled, the read would block
    /// (`Ok(None)`, partial state retained), or the peer disconnects /
    /// violates the protocol (`Err`). EOF mid-frame is `UnexpectedEof`; EOF
    /// between frames is `ConnectionAborted` (an orderly close).
    pub fn poll(&mut self, r: &mut dyn Read) -> io::Result<Option<Frame>> {
        loop {
            if self.header.is_none() && self.buf.len() >= HEADER_LEN {
                if self.buf[0..2] != MAGIC {
                    return Err(protocol_err("bad frame magic"));
                }
                if self.buf[2] != VERSION {
                    return Err(protocol_err(format!(
                        "unsupported protocol version {}",
                        self.buf[2]
                    )));
                }
                let kind = FrameKind::from_byte(self.buf[3])
                    .ok_or_else(|| protocol_err(format!("unknown frame kind {}", self.buf[3])))?;
                let len = u32::from_le_bytes([self.buf[4], self.buf[5], self.buf[6], self.buf[7]]);
                if len > MAX_FRAME_LEN {
                    return Err(protocol_err(format!(
                        "oversized frame: {len} > {MAX_FRAME_LEN}"
                    )));
                }
                let crc = u32::from_le_bytes([self.buf[8], self.buf[9], self.buf[10], self.buf[11]]);
                self.header = Some((kind, len, crc));
            }
            if let Some((kind, len, crc)) = self.header {
                let total = HEADER_LEN + len as usize;
                if self.buf.len() >= total {
                    let payload = self.buf[HEADER_LEN..total].to_vec();
                    if crc32(&payload) != crc {
                        return Err(protocol_err("frame checksum mismatch"));
                    }
                    self.buf.drain(..total);
                    self.header = None;
                    return Ok(Some(Frame { kind, payload }));
                }
            }
            let want = match self.header {
                Some((_, len, _)) => HEADER_LEN + len as usize - self.buf.len(),
                None => HEADER_LEN - self.buf.len(),
            };
            // Read straight into the assembly buffer sized for the frame
            // remainder — no fixed-size bounce buffer, no second copy, and a
            // large batch frame arrives in one read instead of 4 KiB chunks.
            let have = self.buf.len();
            self.buf.resize(have + want, 0);
            match r.read(&mut self.buf[have..]) {
                Ok(0) => {
                    self.buf.truncate(have);
                    return Err(if self.mid_frame() {
                        io::Error::new(io::ErrorKind::UnexpectedEof, "disconnect mid-frame")
                    } else {
                        io::Error::new(io::ErrorKind::ConnectionAborted, "peer closed")
                    });
                }
                Ok(n) => self.buf.truncate(have + n),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    self.buf.truncate(have);
                    continue;
                }
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    self.buf.truncate(have);
                    return Ok(None);
                }
                Err(e) => {
                    self.buf.truncate(have);
                    return Err(e);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A reader that hands out its script in fixed-size slices, interleaving
    /// `WouldBlock` between them — a deterministic stand-in for a socket
    /// under a read timeout.
    struct Chunked {
        data: Vec<u8>,
        pos: usize,
        chunk: usize,
        block_next: bool,
    }

    impl Read for Chunked {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.block_next {
                self.block_next = false;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "tick"));
            }
            self.block_next = true;
            let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
            if n == 0 {
                return Ok(0);
            }
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    #[test]
    fn crc32_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_single_frame() {
        let bytes = encode_frame(FrameKind::Request, b"hello");
        let mut r = io::Cursor::new(bytes);
        let mut fr = FrameReader::new();
        let f = fr.poll(&mut r).unwrap().unwrap();
        assert_eq!(f.kind, FrameKind::Request);
        assert_eq!(f.payload, b"hello");
    }

    #[test]
    fn reassembles_across_timeouts_byte_by_byte() {
        let mut data = encode_frame(FrameKind::Push, b"abc");
        data.extend(encode_frame(FrameKind::Ping, b""));
        let mut r = Chunked {
            data,
            pos: 0,
            chunk: 1,
            block_next: false,
        };
        let mut fr = FrameReader::new();
        let mut frames = Vec::new();
        for _ in 0..200 {
            if let Some(f) = fr.poll(&mut r).unwrap() {
                frames.push(f);
            }
            if frames.len() == 2 {
                break;
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].payload, b"abc");
        assert_eq!(frames[1].kind, FrameKind::Ping);
    }

    /// A reader driven by an explicit script of slices and error kinds — an
    /// even more adversarial socket stand-in than [`Chunked`]: each step is
    /// exactly what (and only what) one `read` call yields.
    struct Scripted {
        steps: Vec<Result<Vec<u8>, io::ErrorKind>>,
        next: usize,
        /// Remainder of a step larger than the caller's read buffer.
        pending: Vec<u8>,
    }

    impl Scripted {
        fn new(steps: Vec<Result<Vec<u8>, io::ErrorKind>>) -> Scripted {
            Scripted {
                steps,
                next: 0,
                pending: Vec::new(),
            }
        }
    }

    impl Read for Scripted {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.pending.is_empty() {
                let step = self.steps.get(self.next).cloned().unwrap_or(Ok(Vec::new()));
                self.next += 1;
                match step {
                    Ok(bytes) => self.pending = bytes,
                    Err(kind) => return Err(io::Error::new(kind, "scripted")),
                }
                if self.pending.is_empty() {
                    return Ok(0); // script exhausted: EOF
                }
            }
            let n = self.pending.len().min(buf.len());
            buf[..n].copy_from_slice(&self.pending[..n]);
            self.pending.drain(..n);
            Ok(n)
        }
    }

    /// The 12-byte header itself arriving in three reads — with timeout
    /// flavors interleaved — must leave the reader parked on `Ok(None)`
    /// (state retained) until the payload completes the frame.
    #[test]
    fn header_split_across_three_reads_is_reassembled() {
        let bytes = encode_frame(FrameKind::Request, b"split-header");
        assert_eq!(HEADER_LEN, 12);
        let (h, payload) = bytes.split_at(HEADER_LEN);
        let mut r = Scripted::new(vec![
            Ok(h[..4].to_vec()),
            Err(io::ErrorKind::WouldBlock),
            Ok(h[4..7].to_vec()),
            Err(io::ErrorKind::TimedOut),
            Ok(h[7..].to_vec()),
            Err(io::ErrorKind::WouldBlock),
            Ok(payload.to_vec()),
        ]);
        let mut fr = FrameReader::new();
        let mut polls_without_frame = 0;
        let frame = loop {
            match fr.poll(&mut r).unwrap() {
                Some(f) => break f,
                None => polls_without_frame += 1,
            }
            assert!(polls_without_frame < 20, "reader lost partial-header state");
        };
        assert_eq!(frame.kind, FrameKind::Request);
        assert_eq!(frame.payload, b"split-header");
        assert!(
            polls_without_frame >= 2,
            "the split must actually span polls (got {polls_without_frame})"
        );
    }

    /// The checksum verdict lands exactly when the last payload byte
    /// arrives: with every byte but one, the reader reports no frame and no
    /// error; the final byte yields the frame (good CRC) or `InvalidData`
    /// (corrupt CRC) on that very poll.
    #[test]
    fn crc_verdict_completes_on_the_final_byte() {
        let bytes = encode_frame(FrameKind::Response, b"crc-on-last-byte");
        let (head, last) = bytes.split_at(bytes.len() - 1);

        // Good CRC: frame materializes on the poll that sees the last byte.
        let mut r = Scripted::new(vec![
            Ok(head.to_vec()),
            Err(io::ErrorKind::WouldBlock),
            Err(io::ErrorKind::TimedOut),
        ]);
        let mut fr = FrameReader::new();
        assert!(fr.poll(&mut r).unwrap().is_none(), "one byte short: no frame");
        assert!(fr.poll(&mut r).unwrap().is_none(), "still parked on timeout");
        let mut r = Scripted::new(vec![Ok(last.to_vec())]);
        let f = fr.poll(&mut r).unwrap().expect("final byte completes the frame");
        assert_eq!(f.payload, b"crc-on-last-byte");

        // Corrupt CRC: the same final poll is the one that rejects.
        let mut fr = FrameReader::new();
        let mut r = Scripted::new(vec![Ok(head.to_vec()), Err(io::ErrorKind::WouldBlock)]);
        assert!(fr.poll(&mut r).unwrap().is_none());
        let mut r = Scripted::new(vec![Ok(vec![last[0] ^ 0xFF])]);
        let err = fr.poll(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"));
    }

    /// Byte-at-a-time trickle of a *sequence* of frames, every single read
    /// separated by a timeout: nothing is lost, nothing reordered, and the
    /// kinds survive intact.
    #[test]
    fn byte_trickle_with_timeouts_between_every_byte() {
        let mut data = encode_frame(FrameKind::Request, b"x");
        data.extend(encode_frame(FrameKind::Push, &[0u8; 40]));
        data.extend(encode_frame(FrameKind::Goodbye, b""));
        let mut steps: Vec<Result<Vec<u8>, io::ErrorKind>> = Vec::new();
        for (i, b) in data.iter().enumerate() {
            steps.push(Ok(vec![*b]));
            steps.push(Err(if i % 2 == 0 {
                io::ErrorKind::WouldBlock
            } else {
                io::ErrorKind::TimedOut
            }));
        }
        let mut r = Scripted::new(steps);
        let mut fr = FrameReader::new();
        let mut kinds = Vec::new();
        for _ in 0..(data.len() * 2 + 4) {
            if let Some(f) = fr.poll(&mut r).unwrap() {
                kinds.push(f.kind);
            }
            if kinds.len() == 3 {
                break;
            }
        }
        assert_eq!(kinds, vec![FrameKind::Request, FrameKind::Push, FrameKind::Goodbye]);
    }

    /// A writer that accepts at most `cap` bytes per call and ignores the
    /// second vectored slice half the time — exercises the partial-write
    /// resume logic in `write_frame_vectored`.
    struct Dribble {
        out: Vec<u8>,
        cap: usize,
    }

    impl Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = self.cap.min(buf.len());
            self.out.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn vectored_write_matches_encode_frame() {
        let payload = b"vectored-payload-bytes".to_vec();
        let mut sink = Vec::new();
        write_frame_vectored(&mut sink, FrameKind::Request, &payload).unwrap();
        assert_eq!(sink, encode_frame(FrameKind::Request, &payload));
        assert_eq!(frame_header(FrameKind::Request, &payload), sink[..HEADER_LEN]);
    }

    #[test]
    fn vectored_write_survives_partial_writes() {
        for cap in [1, 3, 7, 13] {
            let payload: Vec<u8> = (0..100u8).collect();
            let mut sink = Dribble {
                out: Vec::new(),
                cap,
            };
            write_frame_vectored(&mut sink, FrameKind::Push, &payload).unwrap();
            assert_eq!(sink.out, encode_frame(FrameKind::Push, &payload), "cap={cap}");
        }
    }

    #[test]
    fn corrupted_payload_is_a_checksum_error() {
        let mut bytes = encode_frame(FrameKind::Response, b"payload");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        let mut fr = FrameReader::new();
        let err = fr.poll(&mut io::Cursor::new(bytes)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"));
    }

    #[test]
    fn oversized_declaration_rejected_before_reading_payload() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(VERSION);
        bytes.push(0);
        bytes.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let mut fr = FrameReader::new();
        let err = fr.poll(&mut io::Cursor::new(bytes)).unwrap_err();
        assert!(err.to_string().contains("oversized"));
    }

    #[test]
    fn bad_magic_and_bad_version_rejected() {
        let mut bytes = encode_frame(FrameKind::Request, b"x");
        bytes[0] = b'X';
        let err = FrameReader::new()
            .poll(&mut io::Cursor::new(bytes))
            .unwrap_err();
        assert!(err.to_string().contains("magic"));

        let mut bytes = encode_frame(FrameKind::Request, b"x");
        bytes[2] = 99;
        let err = FrameReader::new()
            .poll(&mut io::Cursor::new(bytes))
            .unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn eof_mid_frame_vs_between_frames() {
        let bytes = encode_frame(FrameKind::Request, b"torn");
        let mut fr = FrameReader::new();
        let err = fr
            .poll(&mut io::Cursor::new(&bytes[..HEADER_LEN + 2]))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        let mut fr = FrameReader::new();
        let err = fr.poll(&mut io::Cursor::new(Vec::new())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionAborted);
    }
}
