//! Typed participant clients: the client half of the Fig. 5 split.
//!
//! A [`Connection`] owns one wire session plus a reader thread that routes
//! responses, buffers pushed notifications, answers heartbeats and —
//! crucially — reconnects on its own when the link drops. Resume semantics
//! give the §5.4 end-to-end guarantee:
//!
//! * **no loss** — the server never removes a notification from the
//!   persistent queue until acknowledged, so after a reconnect everything
//!   undelivered (or delivered-but-unacked) is pushed again;
//! * **no duplicates** — the client deduplicates pushes by sequence number,
//!   so an application [`ViewerClient::recv`] loop sees each notification
//!   exactly once even across a mid-delivery crash;
//! * **no duplicate acks** — acknowledgements that could not be confirmed
//!   before a disconnect are flushed once during the reconnect handshake,
//!   and the server's `ack_exact` makes replays no-ops.
//!
//! The typed facades [`WorklistClient`], [`MonitorClient`] and
//! [`ViewerClient`] mirror the in-process APIs (`Worklist`,
//! `ProcessMonitor`, `AwarenessViewer`) method for method.

use std::collections::{BTreeSet, VecDeque};
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use cmi_awareness::queue::Notification;
use cmi_awareness::viewer::DigestEntry;
use cmi_coord::monitor::ProcessStats;
use cmi_coord::worklist::WorkItem;
use cmi_core::ids::{ActivityInstanceId, ProcessInstanceId, UserId};
use cmi_core::value::Value;

use crate::codec::{encode_frame, Frame, FrameKind, FrameReader};
use crate::transport::NetStream;
use crate::wire::{decode_push, Request, Response};

/// Tuning knobs for a [`Connection`].
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// How long a request waits for its response before giving up.
    pub response_timeout: Duration,
    /// Idle interval after which the client pings (must be well under the
    /// server's idle timeout).
    pub heartbeat: Duration,
    /// Reconnect attempts per outage before the connection is declared dead.
    pub reconnect_attempts: u32,
    /// Pause between reconnect attempts.
    pub reconnect_backoff: Duration,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            response_timeout: Duration::from_secs(2),
            heartbeat: Duration::from_millis(500),
            reconnect_attempts: 40,
            reconnect_backoff: Duration::from_millis(25),
        }
    }
}

/// Client-side robustness counters (see [`Connection::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Transparent reconnects performed by the reader thread.
    pub reconnects: u64,
    /// Idempotent requests re-sent after a link outage raced the response.
    pub request_retries: u64,
    /// Re-pushed notifications dropped by sequence-number dedup (the
    /// at-least-once push stream collapsing to exactly-once).
    pub push_dropped_duplicates: u64,
    /// Acknowledgements awaiting flush on the next reconnect handshake.
    pub pending_acks: u64,
}

/// Server telemetry fetched over the wire ([`Connection::telemetry`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerTelemetry {
    /// Prometheus-style metrics exposition.
    pub exposition: String,
    /// Rendered detection trace for the requested sequence number.
    pub trace: Option<String>,
    /// Rendered flight-recorder dump.
    pub flight: Option<String>,
}

/// How a connection dials (or re-dials) its server.
pub type DialFn = dyn Fn() -> io::Result<Box<dyn NetStream>> + Send + Sync;

#[derive(Default)]
struct Link {
    /// The write half while the link is up.
    writer: Option<Box<dyn NetStream>>,
    /// Set when reconnection attempts are exhausted.
    failed: bool,
}

struct ClientInner {
    dial: Box<DialFn>,
    cfg: ClientConfig,
    user_name: String,
    user_id: AtomicU64,
    stop: AtomicBool,
    subscribed: AtomicBool,
    reconnects: AtomicU64,
    /// Idempotent requests re-sent after a link outage raced the response.
    request_retries: AtomicU64,
    /// Re-pushed notifications dropped by sequence-number dedup.
    push_dropped_duplicates: AtomicU64,
    link: Mutex<Link>,
    link_cv: Condvar,
    /// One-slot response mailbox (requests are serialized by `call_lock`).
    resp: Mutex<Option<Response>>,
    resp_cv: Condvar,
    call_lock: Mutex<()>,
    /// Pushed notifications awaiting `recv`, already deduplicated.
    pushes: Mutex<VecDeque<Notification>>,
    push_cv: Condvar,
    /// Every push sequence number ever observed (dedup across reconnects).
    seen: Mutex<BTreeSet<u64>>,
    /// Acks that failed to reach the server; flushed on reconnect.
    pending_acks: Mutex<BTreeSet<u64>>,
}

impl ClientInner {
    fn link_down(&self) {
        let mut link = self.link.lock();
        if let Some(w) = link.writer.take() {
            w.shutdown_stream();
        }
        self.link_cv.notify_all();
        // Wake any caller parked on the response mailbox so it can observe
        // the outage instead of sleeping out its full timeout.
        self.resp_cv.notify_all();
    }

    fn handle_push(&self, payload: &[u8]) {
        let Ok(n) = decode_push(payload) else {
            return;
        };
        let mut seen = self.seen.lock();
        if !seen.insert(n.seq) {
            // A re-push after reconnect: the application already has (or
            // will get) the first copy; the ack either is pending flush or
            // will be sent when the app consumes that copy. Previously this
            // branch was invisible; it is now counted so reconnect races
            // show up in `ClientStats` instead of vanishing.
            self.push_dropped_duplicates.fetch_add(1, Ordering::Relaxed);
            return;
        }
        drop(seen);
        self.pushes.lock().push_back(n);
        self.push_cv.notify_all();
    }
}

/// Inline request/response over a stream the reader thread currently owns
/// (used only during the connect handshake, before the link is published).
fn handshake_call(
    stream: &mut Box<dyn NetStream>,
    frames: &mut FrameReader,
    inner: &ClientInner,
    req: &Request,
    deadline: Instant,
) -> io::Result<Response> {
    stream.write_all(&encode_frame(FrameKind::Request, &req.encode()))?;
    stream.flush()?;
    loop {
        if Instant::now() >= deadline {
            return Err(io::Error::new(io::ErrorKind::TimedOut, "handshake timeout"));
        }
        match frames.poll(&mut **stream)? {
            Some(Frame {
                kind: FrameKind::Response,
                payload,
            }) => return Ok(Response::decode(&payload)?),
            Some(Frame {
                kind: FrameKind::Push,
                payload,
            }) => inner.handle_push(&payload),
            Some(_) => {} // Pong / Goodbye races are harmless here
            None => {}
        }
    }
}

/// Dials, signs on, restores subscription state and flushes pending acks.
/// Returns the connected stream and its (possibly part-filled) frame reader.
fn establish(inner: &ClientInner) -> io::Result<(Box<dyn NetStream>, FrameReader)> {
    let mut stream = (inner.dial)()?;
    // Short poll granularity for the handshake only; once the session is
    // up, `reader_main` re-arms the timeout to the next heartbeat deadline
    // so the reader sleeps instead of tick-polling.
    stream.set_stream_read_timeout(Some(Duration::from_millis(20)))?;
    let mut frames = FrameReader::new();
    let deadline = Instant::now() + inner.cfg.response_timeout;
    let resume = inner.reconnects.load(Ordering::Relaxed) > 0;
    let hello = Request::Hello {
        user: inner.user_name.clone(),
        resume,
    };
    match handshake_call(&mut stream, &mut frames, inner, &hello, deadline)? {
        Response::HelloOk { user } => inner.user_id.store(user, Ordering::Relaxed),
        Response::Err { message } => {
            return Err(io::Error::new(io::ErrorKind::PermissionDenied, message))
        }
        other => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unexpected hello response {other:?}"),
            ))
        }
    }
    if inner.subscribed.load(Ordering::Relaxed) {
        handshake_call(&mut stream, &mut frames, inner, &Request::Subscribe, deadline)?;
    }
    let pending: Vec<u64> = inner.pending_acks.lock().iter().copied().collect();
    if !pending.is_empty() {
        let req = Request::AckNotifs {
            seqs: pending.clone(),
        };
        if let Response::Count(_) = handshake_call(&mut stream, &mut frames, inner, &req, deadline)?
        {
            let mut p = inner.pending_acks.lock();
            for s in &pending {
                p.remove(s);
            }
        }
    }
    Ok((stream, frames))
}

fn reader_main(inner: Arc<ClientInner>) {
    'outer: while !inner.stop.load(Ordering::SeqCst) {
        // Connect (or reconnect) with bounded attempts and backoff.
        let mut attempt: u32 = 0;
        let (stream, mut frames) = loop {
            if inner.stop.load(Ordering::SeqCst) {
                return;
            }
            match establish(&inner) {
                Ok(pair) => break pair,
                Err(_) => {
                    attempt += 1;
                    if attempt > inner.cfg.reconnect_attempts {
                        let mut link = inner.link.lock();
                        link.failed = true;
                        inner.link_cv.notify_all();
                        inner.resp_cv.notify_all();
                        return;
                    }
                    std::thread::sleep(inner.cfg.reconnect_backoff);
                }
            }
        };
        let Ok(writer) = stream.try_clone_stream() else {
            inner.reconnects.fetch_add(1, Ordering::Relaxed);
            continue 'outer;
        };
        {
            let mut link = inner.link.lock();
            link.writer = Some(writer);
            link.failed = false;
            inner.link_cv.notify_all();
        }
        let mut reader = stream;
        let mut last_send = Instant::now();
        loop {
            // The heartbeat deadline is folded into the read timeout: the
            // reader sleeps exactly until the next heartbeat is due (woken
            // early by data arrival or stream shutdown), instead of
            // tick-polling on a fixed short timeout. One reader thread per
            // connection — reused across every reconnect — is all the
            // client ever runs; there are no per-session heartbeat threads
            // to leak.
            let until_heartbeat = inner
                .cfg
                .heartbeat
                .saturating_sub(last_send.elapsed())
                .max(Duration::from_millis(1));
            if reader
                .set_stream_read_timeout(Some(until_heartbeat))
                .is_err()
            {
                inner.link_down();
                inner.reconnects.fetch_add(1, Ordering::Relaxed);
                continue 'outer;
            }
            if inner.stop.load(Ordering::SeqCst) {
                let mut link = inner.link.lock();
                if let Some(w) = link.writer.as_mut() {
                    let _ = w.write_all(&encode_frame(FrameKind::Goodbye, &[]));
                    let _ = w.flush();
                }
                if let Some(w) = link.writer.take() {
                    w.shutdown_stream();
                }
                reader.shutdown_stream();
                return;
            }
            match frames.poll(&mut *reader) {
                Ok(Some(frame)) => match frame.kind {
                    FrameKind::Response => {
                        *inner.resp.lock() = Some(match Response::decode(&frame.payload) {
                            Ok(r) => r,
                            Err(e) => Response::Err {
                                message: e.to_string(),
                            },
                        });
                        inner.resp_cv.notify_all();
                    }
                    FrameKind::Push => inner.handle_push(&frame.payload),
                    FrameKind::Pong => {}
                    FrameKind::Goodbye => {
                        // Orderly server close (drain or idle timeout):
                        // treat like an outage and try to get back on.
                        inner.link_down();
                        inner.reconnects.fetch_add(1, Ordering::Relaxed);
                        continue 'outer;
                    }
                    FrameKind::Request | FrameKind::Ping => {} // server never sends these
                },
                Ok(None) => {
                    // Idle tick: heartbeat if we have been quiet too long.
                    if last_send.elapsed() >= inner.cfg.heartbeat {
                        let mut link = inner.link.lock();
                        let ok = match link.writer.as_mut() {
                            Some(w) => {
                                w.write_all(&encode_frame(FrameKind::Ping, &[])).is_ok()
                                    && w.flush().is_ok()
                            }
                            None => false,
                        };
                        drop(link);
                        if !ok {
                            inner.link_down();
                            inner.reconnects.fetch_add(1, Ordering::Relaxed);
                            continue 'outer;
                        }
                        last_send = Instant::now();
                    }
                }
                Err(_) => {
                    inner.link_down();
                    inner.reconnects.fetch_add(1, Ordering::Relaxed);
                    continue 'outer;
                }
            }
        }
    }
}

/// One participant connection to a [`NetServer`](crate::server::NetServer).
pub struct Connection {
    inner: Arc<ClientInner>,
    reader: Option<std::thread::JoinHandle<()>>,
}

impl Connection {
    /// Connects using an arbitrary dial function (loopback or custom
    /// transports) and signs on `user`. Blocks until the first session is
    /// established or the attempt budget is exhausted.
    pub fn connect(
        dial: Box<DialFn>,
        user: &str,
        cfg: ClientConfig,
    ) -> io::Result<Connection> {
        let inner = Arc::new(ClientInner {
            dial,
            cfg,
            user_name: user.to_owned(),
            user_id: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            subscribed: AtomicBool::new(false),
            reconnects: AtomicU64::new(0),
            request_retries: AtomicU64::new(0),
            push_dropped_duplicates: AtomicU64::new(0),
            link: Mutex::new(Link::default()),
            link_cv: Condvar::new(),
            resp: Mutex::new(None),
            resp_cv: Condvar::new(),
            call_lock: Mutex::new(()),
            pushes: Mutex::new(VecDeque::new()),
            push_cv: Condvar::new(),
            seen: Mutex::new(BTreeSet::new()),
            pending_acks: Mutex::new(BTreeSet::new()),
        });
        let thread_inner = inner.clone();
        let reader = std::thread::Builder::new()
            .name("cmi-net-client".into())
            .spawn(move || reader_main(thread_inner))
            .expect("spawn client reader thread");
        let conn = Connection {
            inner,
            reader: Some(reader),
        };
        conn.wait_connected()?;
        Ok(conn)
    }

    /// Connects over TCP and signs on `user`.
    pub fn connect_tcp(
        addr: std::net::SocketAddr,
        user: &str,
        cfg: ClientConfig,
    ) -> io::Result<Connection> {
        let dial = move || -> io::Result<Box<dyn NetStream>> {
            let stream = std::net::TcpStream::connect(addr)?;
            let _ = stream.set_nodelay(true);
            Ok(Box::new(stream))
        };
        Connection::connect(Box::new(dial), user, cfg)
    }

    /// Connects over an in-memory loopback transport and signs on `user`.
    pub fn connect_loopback(
        connector: crate::transport::LoopbackConnector,
        user: &str,
        cfg: ClientConfig,
    ) -> io::Result<Connection> {
        Connection::connect(Box::new(move || connector.dial()), user, cfg)
    }

    fn wait_connected(&self) -> io::Result<()> {
        let cfg = &self.inner.cfg;
        let deadline = Instant::now()
            + cfg.response_timeout
            + (cfg.reconnect_backoff + cfg.response_timeout) * (cfg.reconnect_attempts + 1);
        let mut link = self.inner.link.lock();
        loop {
            if link.writer.is_some() {
                return Ok(());
            }
            if link.failed {
                return Err(io::Error::new(
                    io::ErrorKind::ConnectionRefused,
                    "connection failed (reconnect attempts exhausted)",
                ));
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(io::Error::new(io::ErrorKind::TimedOut, "connect timeout"));
            }
            self.inner.link_cv.wait_for(&mut link, deadline - now);
        }
    }

    /// The participant id the server resolved at sign-on.
    pub fn user_id(&self) -> UserId {
        UserId(self.inner.user_id.load(Ordering::Relaxed))
    }

    /// How many times the connection has transparently reconnected.
    pub fn reconnects(&self) -> u64 {
        self.inner.reconnects.load(Ordering::Relaxed)
    }

    /// Client-side robustness statistics. Reconnect races used to be
    /// invisible (a silently retried read, a silently dropped duplicate
    /// push); they are counted here instead.
    pub fn stats(&self) -> ClientStats {
        ClientStats {
            reconnects: self.inner.reconnects.load(Ordering::Relaxed),
            request_retries: self.inner.request_retries.load(Ordering::Relaxed),
            push_dropped_duplicates: self
                .inner
                .push_dropped_duplicates
                .load(Ordering::Relaxed),
            pending_acks: self.inner.pending_acks.lock().len() as u64,
        }
    }

    /// Fetches server telemetry: the Prometheus exposition, optionally the
    /// detection trace behind the pushed notification with queue sequence
    /// `trace_seq`, optionally the flight-recorder dump.
    pub fn telemetry(
        &self,
        trace_seq: Option<u64>,
        include_flight: bool,
    ) -> io::Result<ServerTelemetry> {
        match self.call_retry(&Request::Telemetry {
            trace_seq,
            include_flight,
        })? {
            Response::Telemetry {
                exposition,
                trace,
                flight,
            } => Ok(ServerTelemetry {
                exposition,
                trace,
                flight,
            }),
            Response::Err { message } => Err(io::Error::other(message)),
            other => Err(unexpected(other)),
        }
    }

    /// Severs the current link without stopping the connection: the reader
    /// thread notices and reconnects. Exists so tests (and demos) can force
    /// the mid-scenario disconnect path deterministically.
    pub fn kill_link(&self) {
        self.inner.link_down();
    }

    /// Sends one request and waits for its response.
    pub fn call(&self, req: &Request) -> io::Result<Response> {
        let _serialized = self.inner.call_lock.lock();
        // Wait for a live link (the reader thread may be mid-reconnect).
        self.wait_connected()?;
        *self.inner.resp.lock() = None;
        {
            let mut link = self.inner.link.lock();
            let Some(w) = link.writer.as_mut() else {
                return Err(io::Error::new(io::ErrorKind::NotConnected, "link down"));
            };
            w.write_all(&encode_frame(FrameKind::Request, &req.encode()))?;
            w.flush()?;
        }
        let deadline = Instant::now() + self.inner.cfg.response_timeout;
        let mut slot = self.inner.resp.lock();
        loop {
            if let Some(resp) = slot.take() {
                return Ok(resp);
            }
            // The request was written: if the link died before the response
            // arrived we cannot know whether it was applied, so surface the
            // outage instead of retrying a possibly non-idempotent request.
            if self.inner.link.lock().writer.is_none() {
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "link lost while awaiting response",
                ));
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(io::Error::new(io::ErrorKind::TimedOut, "response timeout"));
            }
            self.inner.resp_cv.wait_for(&mut slot, deadline - now);
        }
    }

    /// [`Connection::call`] with bounded retries for **idempotent**
    /// requests (reads and replay-safe acks).
    ///
    /// `call` deliberately refuses to retry after a link outage because it
    /// cannot know whether a non-idempotent request was applied. Reads have
    /// no such hazard, yet they used to surface the same `BrokenPipe` —
    /// callers like `MonitorClient::stats` failed spuriously during a
    /// reconnect race and the retry the application then performed was
    /// invisible. This wrapper owns that retry and counts it
    /// (`ClientStats::request_retries`).
    fn call_retry(&self, req: &Request) -> io::Result<Response> {
        let mut last;
        let mut attempt = 0;
        loop {
            match self.call(req) {
                Ok(resp) => return Ok(resp),
                Err(e) => {
                    let transient = matches!(
                        e.kind(),
                        io::ErrorKind::BrokenPipe | io::ErrorKind::NotConnected
                    );
                    last = e;
                    if !transient || attempt >= 2 {
                        return Err(last);
                    }
                    attempt += 1;
                    self.inner.request_retries.fetch_add(1, Ordering::Relaxed);
                    // `call` itself blocks until the link is back (or the
                    // reconnect budget is exhausted), so no sleep here.
                }
            }
        }
    }

    fn expect_ok(&self, req: &Request) -> io::Result<()> {
        match self.call(req)? {
            Response::Ok => Ok(()),
            Response::Err { message } => Err(io::Error::other(message)),
            other => Err(unexpected(other)),
        }
    }

    /// The worklist facade over this connection.
    pub fn worklist(&self) -> WorklistClient<'_> {
        WorklistClient { conn: self }
    }

    /// The process-monitor facade over this connection.
    pub fn monitor(&self) -> MonitorClient<'_> {
        MonitorClient { conn: self }
    }

    /// The awareness-viewer facade over this connection.
    pub fn viewer(&self) -> ViewerClient<'_> {
        ViewerClient { conn: self }
    }

    /// Injects an external event (`CmiServer::external_event`); returns the
    /// number of notifications it produced.
    pub fn external_event(&self, source: &str, fields: Vec<(String, Value)>) -> io::Result<u64> {
        match self.call(&Request::ExternalEvent {
            source: source.to_owned(),
            fields,
        })? {
            Response::Count(n) => Ok(n),
            Response::Err { message } => Err(io::Error::other(message)),
            other => Err(unexpected(other)),
        }
    }

    /// Signs off and closes the connection, joining the reader thread.
    pub fn close(mut self) {
        let _ = self.call(&Request::SignOff);
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        // Unblock a reader parked in a read: shut the stream down.
        self.inner.link_down();
        self.inner.push_cv.notify_all();
        if let Some(t) = self.reader.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn unexpected(resp: Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        format!("unexpected response {resp:?}"),
    )
}

/// Remote counterpart of [`cmi_coord::worklist::Worklist`].
pub struct WorklistClient<'a> {
    conn: &'a Connection,
}

impl WorklistClient<'_> {
    /// Work items claimable by the signed-on user (`Worklist::for_user`).
    pub fn for_user(&self) -> io::Result<Vec<WorkItem>> {
        match self.conn.call_retry(&Request::WorklistForUser)? {
            Response::WorkItems(items) => Ok(items),
            Response::Err { message } => Err(io::Error::other(message)),
            other => Err(unexpected(other)),
        }
    }

    /// Every open work item (`Worklist::all_open`).
    pub fn all_open(&self) -> io::Result<Vec<WorkItem>> {
        match self.conn.call_retry(&Request::WorklistAllOpen)? {
            Response::WorkItems(items) => Ok(items),
            Response::Err { message } => Err(io::Error::other(message)),
            other => Err(unexpected(other)),
        }
    }

    /// Claims a ready activity instance (`Worklist::claim`).
    pub fn claim(&self, instance: ActivityInstanceId) -> io::Result<()> {
        self.conn.expect_ok(&Request::Claim {
            instance: instance.raw(),
        })
    }

    /// Completes a running activity instance (`Worklist::complete`).
    pub fn complete(&self, instance: ActivityInstanceId) -> io::Result<()> {
        self.conn.expect_ok(&Request::Complete {
            instance: instance.raw(),
        })
    }
}

/// Remote counterpart of [`cmi_coord::monitor::ProcessMonitor`].
pub struct MonitorClient<'a> {
    conn: &'a Connection,
}

impl MonitorClient<'_> {
    /// Aggregate instance-state statistics (`ProcessMonitor::stats`).
    /// Idempotent: transparently retried across reconnect races.
    pub fn stats(&self, root: ProcessInstanceId) -> io::Result<ProcessStats> {
        match self
            .conn
            .call_retry(&Request::MonitorStats { root: root.raw() })?
        {
            Response::Stats(s) => Ok(s),
            Response::Err { message } => Err(io::Error::other(message)),
            other => Err(unexpected(other)),
        }
    }

    /// Rendered instance tree (`ProcessMonitor::render`).
    /// Idempotent: transparently retried across reconnect races.
    pub fn render(&self, root: ProcessInstanceId) -> io::Result<String> {
        match self
            .conn
            .call_retry(&Request::MonitorRender { root: root.raw() })?
        {
            Response::Text(t) => Ok(t),
            Response::Err { message } => Err(io::Error::other(message)),
            other => Err(unexpected(other)),
        }
    }
}

/// Remote counterpart of [`cmi_awareness::viewer::AwarenessViewer`].
pub struct ViewerClient<'a> {
    conn: &'a Connection,
}

impl ViewerClient<'_> {
    fn notifications(&self, req: &Request) -> io::Result<Vec<Notification>> {
        match self.conn.call(req)? {
            Response::Notifications(ns) => Ok(ns),
            Response::Err { message } => Err(io::Error::other(message)),
            other => Err(unexpected(other)),
        }
    }

    /// Reads up to `max` notifications without consuming
    /// (`AwarenessViewer::peek`).
    /// Idempotent: transparently retried across reconnect races.
    pub fn peek(&self, max: usize) -> io::Result<Vec<Notification>> {
        match self.conn.call_retry(&Request::Peek { max: max as u64 })? {
            Response::Notifications(ns) => Ok(ns),
            Response::Err { message } => Err(io::Error::other(message)),
            other => Err(unexpected(other)),
        }
    }

    /// Consumes up to `max` notifications oldest-first
    /// (`AwarenessViewer::take`).
    pub fn take(&self, max: usize) -> io::Result<Vec<Notification>> {
        self.notifications(&Request::Take { max: max as u64 })
    }

    /// Consumes up to `max` notifications highest-priority-first
    /// (`AwarenessViewer::take_prioritized`).
    pub fn take_prioritized(&self, max: usize) -> io::Result<Vec<Notification>> {
        self.notifications(&Request::TakePrioritized { max: max as u64 })
    }

    /// Per-(schema, instance) digest (`AwarenessViewer::digest`).
    /// Idempotent: transparently retried across reconnect races.
    pub fn digest(&self) -> io::Result<Vec<DigestEntry>> {
        match self.conn.call_retry(&Request::Digest)? {
            Response::DigestEntries(gs) => Ok(gs),
            Response::Err { message } => Err(io::Error::other(message)),
            other => Err(unexpected(other)),
        }
    }

    /// Number of unread notifications (`AwarenessViewer::unread`).
    /// Idempotent: transparently retried across reconnect races.
    pub fn unread(&self) -> io::Result<u64> {
        match self.conn.call_retry(&Request::Unread)? {
            Response::Count(n) => Ok(n),
            Response::Err { message } => Err(io::Error::other(message)),
            other => Err(unexpected(other)),
        }
    }

    /// Switches the session to push mode: the server streams this user's
    /// notifications; consume them with [`ViewerClient::recv`]. Survives
    /// reconnects (the subscription is restored during the handshake).
    pub fn subscribe(&self) -> io::Result<()> {
        self.conn.expect_ok(&Request::Subscribe)?;
        self.conn.inner.subscribed.store(true, Ordering::Relaxed);
        Ok(())
    }

    /// Waits up to `timeout` for the next pushed notification, acknowledging
    /// it to the server. Exactly-once to the caller: duplicates from
    /// reconnect re-pushes never surface, and acks that cannot be confirmed
    /// are flushed during the next reconnect handshake.
    pub fn recv(&self, timeout: Duration) -> Option<Notification> {
        let inner = &self.conn.inner;
        let deadline = Instant::now() + timeout;
        let n = {
            let mut pushes = inner.pushes.lock();
            loop {
                if let Some(n) = pushes.pop_front() {
                    break n;
                }
                if inner.stop.load(Ordering::SeqCst) {
                    return None;
                }
                let now = Instant::now();
                if now >= deadline {
                    return None;
                }
                inner.push_cv.wait_for(&mut pushes, deadline - now);
            }
        };
        let ack = Request::AckNotifs { seqs: vec![n.seq] };
        match self.conn.call(&ack) {
            Ok(Response::Count(_)) => {}
            _ => {
                // Could not confirm the ack (link down or mid-reconnect):
                // park it; `establish` flushes it on the next session.
                inner.pending_acks.lock().insert(n.seq);
            }
        }
        Some(n)
    }

    /// Drains every already-buffered pushed notification without waiting.
    pub fn drain(&self) -> Vec<Notification> {
        let mut out = Vec::new();
        while let Some(n) = self.recv(Duration::from_millis(0)) {
            out.push(n);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{NetConfig, NetServer};
    use cmi_awareness::builder::AwarenessSchemaBuilder;
    use cmi_awareness::system::CmiServer;
    use cmi_core::ids::ProcessSchemaId;
    use cmi_core::roles::RoleSpec;
    use cmi_events::operators::ExternalFilter;

    /// A system where every `ping` external event notifies role `watchers`
    /// (member: alice).
    fn system_with_identity_schema() -> Arc<CmiServer> {
        let cmi = Arc::new(CmiServer::new());
        let alice = cmi.directory().add_user("alice");
        let watchers = cmi.directory().add_role("watchers").unwrap();
        cmi.directory().assign(alice, watchers).unwrap();
        let mut b =
            AwarenessSchemaBuilder::new(cmi.fresh_awareness_id(), "AS_Ping", ProcessSchemaId(0));
        let f = b
            .external_filter(ExternalFilter::new(ProcessSchemaId(0), "ping", None))
            .unwrap();
        cmi.register_awareness(
            b.deliver_to(f, RoleSpec::org("watchers"))
                .describe("ping observed")
                .build()
                .unwrap(),
        );
        cmi
    }

    #[test]
    fn connect_call_roundtrip_over_loopback() {
        let cmi = system_with_identity_schema();
        let (server, connector) = NetServer::serve_loopback(cmi.clone(), NetConfig::default());
        let conn =
            Connection::connect_loopback(connector, "alice", ClientConfig::default()).unwrap();
        assert_eq!(
            conn.user_id(),
            cmi.directory().user_by_name("alice").unwrap()
        );
        assert_eq!(conn.viewer().unread().unwrap(), 0);
        conn.close();
        server.shutdown();
    }

    #[test]
    fn push_subscribe_receives_external_event() {
        let cmi = system_with_identity_schema();
        let (server, connector) = NetServer::serve_loopback(cmi, NetConfig::default());
        let conn =
            Connection::connect_loopback(connector, "alice", ClientConfig::default()).unwrap();
        let viewer = conn.viewer();
        viewer.subscribe().unwrap();
        let delivered = conn
            .external_event("ping", vec![("user".into(), Value::User(conn.user_id()))])
            .unwrap();
        assert!(delivered >= 1);
        let n = viewer.recv(Duration::from_secs(5)).expect("pushed");
        assert_eq!(n.schema_name, "AS_Ping");
        // Acked: the queue should drain to zero.
        let deadline = Instant::now() + Duration::from_secs(2);
        while viewer.unread().unwrap() != 0 {
            assert!(Instant::now() < deadline);
            std::thread::sleep(Duration::from_millis(5));
        }
        conn.close();
        server.shutdown();
    }

    #[test]
    fn deadline_driven_heartbeats_survive_reconnect() {
        // Regression for the heartbeat refactor: the reader thread arms its
        // read timeout to the next heartbeat deadline (no tick-polling, no
        // per-session heartbeat threads). If the re-armed deadline were
        // lost across a reconnect, the resumed — and otherwise silent —
        // session would hit the server's idle timeout below.
        let cmi = system_with_identity_schema();
        let server_cfg = NetConfig {
            idle_timeout: Duration::from_millis(150),
            ..NetConfig::default()
        };
        let (server, connector) = NetServer::serve_loopback(cmi, server_cfg);
        let client_cfg = ClientConfig {
            heartbeat: Duration::from_millis(40),
            ..ClientConfig::default()
        };
        let conn = Connection::connect_loopback(connector, "alice", client_cfg).unwrap();
        conn.kill_link();
        let deadline = Instant::now() + Duration::from_secs(5);
        while conn.reconnects() == 0 {
            assert!(Instant::now() < deadline, "reconnect after kill_link");
            std::thread::sleep(Duration::from_millis(5));
        }
        // Say nothing for several idle-timeout periods: only heartbeats
        // from the resumed session keep it alive.
        std::thread::sleep(Duration::from_millis(500));
        assert_eq!(server.stats().idle_timeouts, 0, "heartbeats kept the session alive");
        assert!(conn.viewer().unread().is_ok());
        conn.close();
        server.shutdown();
    }

    #[test]
    fn reconnects_transparently_after_kill_link() {
        let cmi = system_with_identity_schema();
        let (server, connector) = NetServer::serve_loopback(cmi, NetConfig::default());
        let conn =
            Connection::connect_loopback(connector, "alice", ClientConfig::default()).unwrap();
        let viewer = conn.viewer();
        viewer.subscribe().unwrap();
        conn.kill_link();
        // The next calls ride the reconnected session.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            match viewer.unread() {
                Ok(0) => break,
                _ if Instant::now() >= deadline => panic!("no reconnect"),
                _ => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        assert!(conn.reconnects() >= 1);
        conn.close();
        server.shutdown();
    }
}
