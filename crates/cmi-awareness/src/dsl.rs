//! The awareness specification language (§5: "AM provides an awareness
//! specification language that is used by awareness designers to construct
//! awareness schemas").
//!
//! The CMI prototype exposed this language through a graphical tool (Fig. 6);
//! this module provides it as text. One source file declares any number of
//! awareness schemas:
//!
//! ```text
//! # The §5.4 deadline-violation schema.
//! awareness "AS_InfoRequest" on "InfoRequest" {
//!     op1  = context_filter(TaskForceContext, TaskForceDeadline)
//!     op2  = context_filter(InfoRequestContext, RequestDeadline)
//!     viol = compare2(<=, op1, op2)
//!     deliver viol to scoped(InfoRequestContext, Requestor) assign identity
//!     describe "task force deadline moved before the request deadline"
//! }
//! ```
//!
//! Expressions: `context_filter(Ctx, Field)`, `activity_filter(var, S1|S2)`,
//! `process_filter(S1|S2)`, `external(source[, instanceParam])`,
//! `and(copy, a, b, …)`, `seq(copy, a, b, …)`, `or(a, b, …)`, `count(x)`,
//! `compare1(op, const, x)`, `compare2(op, a, b)`, and
//! `translate(var, expr)` — where `expr` is evaluated *relative to the
//! subprocess schema* bound to activity variable `var`, reproducing the
//! paper's process invocation operator. `#` starts a line comment.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use cmi_core::ids::{AwarenessSchemaId, ProcessSchemaId};
use cmi_core::repository::SchemaRepository;
use cmi_core::roles::RoleSpec;
use cmi_events::operator::CmpOp;
use cmi_events::operators::{
    ActivityFilter, AndOp, Compare1Op, Compare2Op, ContextFilter, CountOp, ExternalFilter, OrOp,
    OutputOp, SeqOp, TranslateOp,
};
use cmi_events::producers::Producer;
use cmi_events::spec::{NodeId, SpecBuilder};

use crate::assignment::RoleAssignment;
use crate::queue::Priority;
use crate::schema::AwarenessSchema;

/// Errors raised while parsing an awareness specification source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslError {
    /// 1-based line where the problem was noticed.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DslError {}

type DslResult<T> = Result<T, DslError>;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    Op(CmpOp),
    LParen,
    RParen,
    LBrace,
    RBrace,
    Comma,
    Equals,
    Pipe,
    Star,
}

struct Lexer {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

impl Lexer {
    fn new(src: &str) -> DslResult<Self> {
        let mut toks = Vec::new();
        for (lineno, line) in src.lines().enumerate() {
            let line_no = lineno + 1;
            let line = line.split('#').next().unwrap_or("");
            let mut chars = line.char_indices().peekable();
            while let Some(&(i, c)) = chars.peek() {
                match c {
                    c if c.is_whitespace() => {
                        chars.next();
                    }
                    '(' => {
                        toks.push((line_no, Tok::LParen));
                        chars.next();
                    }
                    ')' => {
                        toks.push((line_no, Tok::RParen));
                        chars.next();
                    }
                    '{' => {
                        toks.push((line_no, Tok::LBrace));
                        chars.next();
                    }
                    '}' => {
                        toks.push((line_no, Tok::RBrace));
                        chars.next();
                    }
                    ',' => {
                        toks.push((line_no, Tok::Comma));
                        chars.next();
                    }
                    '|' => {
                        toks.push((line_no, Tok::Pipe));
                        chars.next();
                    }
                    '*' => {
                        toks.push((line_no, Tok::Star));
                        chars.next();
                    }
                    '"' => {
                        chars.next();
                        let mut s = String::new();
                        let mut closed = false;
                        for (_, c) in chars.by_ref() {
                            if c == '"' {
                                closed = true;
                                break;
                            }
                            s.push(c);
                        }
                        if !closed {
                            return Err(DslError {
                                line: line_no,
                                message: "unterminated string literal".into(),
                            });
                        }
                        toks.push((line_no, Tok::Str(s)));
                    }
                    '<' | '>' | '=' | '!' => {
                        // Longest-match comparison operators; a lone '=' is
                        // the assignment token.
                        let rest: String = line[i..].chars().take(2).collect();
                        let (tok, len) = if rest.starts_with("<=") {
                            (Tok::Op(CmpOp::Le), 2)
                        } else if rest.starts_with(">=") {
                            (Tok::Op(CmpOp::Ge), 2)
                        } else if rest.starts_with("==") {
                            (Tok::Op(CmpOp::Eq), 2)
                        } else if rest.starts_with("!=") {
                            (Tok::Op(CmpOp::Ne), 2)
                        } else if rest.starts_with('<') {
                            (Tok::Op(CmpOp::Lt), 1)
                        } else if rest.starts_with('>') {
                            (Tok::Op(CmpOp::Gt), 1)
                        } else {
                            (Tok::Equals, 1)
                        };
                        toks.push((line_no, tok));
                        for _ in 0..len {
                            chars.next();
                        }
                    }
                    c if c.is_ascii_digit() || c == '-' => {
                        let mut s = String::new();
                        s.push(c);
                        chars.next();
                        while let Some(&(_, d)) = chars.peek() {
                            if d.is_ascii_digit() {
                                s.push(d);
                                chars.next();
                            } else {
                                break;
                            }
                        }
                        let v = s.parse().map_err(|_| DslError {
                            line: line_no,
                            message: format!("bad integer `{s}`"),
                        })?;
                        toks.push((line_no, Tok::Int(v)));
                    }
                    c if c.is_alphanumeric() || c == '_' || c == '-' => {
                        let mut s = String::new();
                        while let Some(&(_, d)) = chars.peek() {
                            if d.is_alphanumeric() || d == '_' || d == '-' {
                                s.push(d);
                                chars.next();
                            } else {
                                break;
                            }
                        }
                        toks.push((line_no, Tok::Ident(s)));
                    }
                    other => {
                        return Err(DslError {
                            line: line_no,
                            message: format!("unexpected character `{other}`"),
                        })
                    }
                }
            }
        }
        Ok(Lexer { toks, pos: 0 })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |(l, _)| *l)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, tok: &Tok, what: &str) -> DslResult<()> {
        let line = self.line();
        match self.next() {
            Some(t) if t == *tok => Ok(()),
            other => Err(DslError {
                line,
                message: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    fn ident(&mut self, what: &str) -> DslResult<String> {
        let line = self.line();
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(DslError {
                line,
                message: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    fn string(&mut self, what: &str) -> DslResult<String> {
        let line = self.line();
        match self.next() {
            Some(Tok::Str(s)) => Ok(s),
            other => Err(DslError {
                line,
                message: format!("expected {what} (a \"string\"), found {other:?}"),
            }),
        }
    }
}

/// Parses awareness specification source into awareness schemas. Process
/// schema names and activity variable names are resolved against `repo`;
/// schema ids are drawn from `next_id` (incremented per schema).
pub fn parse(
    src: &str,
    repo: &SchemaRepository,
    next_id: &mut u64,
) -> DslResult<Vec<AwarenessSchema>> {
    let mut lex = Lexer::new(src)?;
    let mut schemas = Vec::new();
    while lex.peek().is_some() {
        schemas.push(parse_schema(&mut lex, repo, next_id)?);
    }
    Ok(schemas)
}

fn err(lex: &Lexer, message: impl Into<String>) -> DslError {
    DslError {
        line: lex.line(),
        message: message.into(),
    }
}

fn parse_schema(
    lex: &mut Lexer,
    repo: &SchemaRepository,
    next_id: &mut u64,
) -> DslResult<AwarenessSchema> {
    let kw = lex.ident("`awareness`")?;
    if kw != "awareness" {
        return Err(err(lex, format!("expected `awareness`, found `{kw}`")));
    }
    let name = lex.string("schema name")?;
    let on = lex.ident("`on`")?;
    if on != "on" {
        return Err(err(lex, "expected `on <process>`"));
    }
    let proc_name = match lex.next() {
        Some(Tok::Str(s)) | Some(Tok::Ident(s)) => s,
        other => return Err(err(lex, format!("expected process name, found {other:?}"))),
    };
    let process = repo
        .activity_schema_by_name(&proc_name)
        .ok_or_else(|| err(lex, format!("unknown process schema `{proc_name}`")))?;
    if !process.is_process() {
        return Err(err(lex, format!("`{proc_name}` is not a process schema")));
    }
    lex.expect(&Tok::LBrace, "`{`")?;

    let mut spec = SpecBuilder::new();
    let mut bindings: BTreeMap<String, (NodeId, ProcessSchemaId)> = BTreeMap::new();
    let mut delivered: Option<(NodeId, RoleSpec, RoleAssignment)> = None;
    let mut description: Option<String> = None;
    let mut priority = Priority::Normal;

    loop {
        match lex.peek() {
            Some(Tok::RBrace) => {
                lex.next();
                break;
            }
            Some(Tok::Ident(id)) if id == "deliver" => {
                lex.next();
                let var = lex.ident("node name")?;
                let (node, _) = *bindings
                    .get(&var)
                    .ok_or_else(|| err(lex, format!("unknown node `{var}`")))?;
                let to = lex.ident("`to`")?;
                if to != "to" {
                    return Err(err(lex, "expected `to`"));
                }
                let role = parse_role(lex)?;
                let mut assignment = RoleAssignment::Identity;
                if let Some(Tok::Ident(a)) = lex.peek() {
                    if a == "assign" {
                        lex.next();
                        assignment = parse_assignment(lex)?;
                    }
                }
                delivered = Some((node, role, assignment));
            }
            Some(Tok::Ident(id)) if id == "describe" => {
                lex.next();
                description = Some(lex.string("description")?);
            }
            Some(Tok::Ident(id)) if id == "priority" => {
                lex.next();
                let p = lex.ident("priority level")?;
                priority = match p.as_str() {
                    "low" => Priority::Low,
                    "normal" => Priority::Normal,
                    "high" => Priority::High,
                    other => {
                        return Err(err(lex, format!("unknown priority `{other}`")))
                    }
                };
            }
            Some(Tok::Ident(_)) => {
                let name = lex.ident("node name")?;
                lex.expect(&Tok::Equals, "`=`")?;
                let node = parse_expr(lex, repo, &mut spec, &mut bindings, process.id())?;
                bindings.insert(name, node);
            }
            other => return Err(err(lex, format!("unexpected token {other:?}"))),
        }
    }

    let (root, role, assignment) = delivered
        .ok_or_else(|| err(lex, "awareness schema has no `deliver` statement"))?;
    let desc = description.unwrap_or_else(|| name.clone());
    let out = spec
        .operator(Arc::new(OutputOp::new(process.id(), &desc)), &[root])
        .map_err(|e| err(lex, e.to_string()))?;
    let id = AwarenessSchemaId(*next_id);
    *next_id += 1;
    let spec = spec
        .build(cmi_core::ids::SpecId(id.raw()), &name, out)
        .map_err(|e| err(lex, e.to_string()))?;
    Ok(AwarenessSchema {
        id,
        name,
        process: process.id(),
        description: spec,
        delivery_role: role,
        assignment,
        event_description: desc,
        priority,
    })
}

fn parse_role(lex: &mut Lexer) -> DslResult<RoleSpec> {
    let kind = lex.ident("`org` or `scoped`")?;
    lex.expect(&Tok::LParen, "`(`")?;
    let role = match kind.as_str() {
        "org" => {
            let name = lex.ident("role name")?;
            RoleSpec::org(&name)
        }
        "scoped" => {
            let ctx = lex.ident("context name")?;
            lex.expect(&Tok::Comma, "`,`")?;
            let role = lex.ident("role name")?;
            RoleSpec::scoped(&ctx, &role)
        }
        other => return Err(err(lex, format!("unknown role kind `{other}`"))),
    };
    lex.expect(&Tok::RParen, "`)`")?;
    Ok(role)
}

fn parse_assignment(lex: &mut Lexer) -> DslResult<RoleAssignment> {
    let name = lex.ident("assignment")?;
    match name.as_str() {
        "identity" => Ok(RoleAssignment::Identity),
        "signed-on" => Ok(RoleAssignment::SignedOn),
        "least-loaded" | "first" => {
            lex.expect(&Tok::LParen, "`(`")?;
            let n = match lex.next() {
                Some(Tok::Int(n)) if n >= 0 => n as usize,
                other => return Err(err(lex, format!("expected count, found {other:?}"))),
            };
            lex.expect(&Tok::RParen, "`)`")?;
            Ok(if name == "first" {
                RoleAssignment::FirstN { n }
            } else {
                RoleAssignment::LeastLoaded { n }
            })
        }
        other => Err(err(lex, format!("unknown assignment `{other}`"))),
    }
}

type Bound = (NodeId, ProcessSchemaId);

fn parse_expr(
    lex: &mut Lexer,
    repo: &SchemaRepository,
    spec: &mut SpecBuilder,
    bindings: &mut BTreeMap<String, Bound>,
    process: ProcessSchemaId,
) -> DslResult<Bound> {
    let func = lex.ident("expression")?;
    // Bare identifier reference?
    if lex.peek() != Some(&Tok::LParen) {
        return bindings
            .get(&func)
            .copied()
            .ok_or_else(|| err(lex, format!("unknown node `{func}`")));
    }
    lex.expect(&Tok::LParen, "`(`")?;
    let op_err = |lex: &Lexer, e: cmi_events::spec::SpecError| err(lex, e.to_string());

    let bound: Bound = match func.as_str() {
        "context_filter" => {
            let ctx = lex.ident("context name")?;
            lex.expect(&Tok::Comma, "`,`")?;
            let field = lex.ident("field name")?;
            let leaf = spec.producer(Producer::Context);
            let n = spec
                .operator(Arc::new(ContextFilter::new(process, &ctx, &field)), &[leaf])
                .map_err(|e| op_err(lex, e))?;
            (n, process)
        }
        "activity_filter" => {
            let var_name = lex.ident("activity variable")?;
            lex.expect(&Tok::Comma, "`,`")?;
            let states = parse_states(lex)?;
            let schema = repo
                .activity_schema(process)
                .map_err(|e| err(lex, e.to_string()))?;
            let var = schema
                .activity_var(&var_name)
                .map_err(|e| err(lex, e.to_string()))?;
            let filter = ActivityFilter {
                process,
                var: Some(var.id),
                old_states: None,
                new_states: states,
            };
            let leaf = spec.producer(Producer::Activity);
            let n = spec
                .operator(Arc::new(filter), &[leaf])
                .map_err(|e| op_err(lex, e))?;
            (n, process)
        }
        "process_filter" => {
            let states = parse_states(lex)?;
            let filter = ActivityFilter {
                process,
                var: None,
                old_states: None,
                new_states: states,
            };
            let leaf = spec.producer(Producer::Activity);
            let n = spec
                .operator(Arc::new(filter), &[leaf])
                .map_err(|e| op_err(lex, e))?;
            (n, process)
        }
        "external" => {
            let source = lex.ident("source name")?;
            let instance_param = if lex.peek() == Some(&Tok::Comma) {
                lex.next();
                Some(lex.ident("instance parameter")?)
            } else {
                None
            };
            let f = ExternalFilter::new(process, &source, instance_param.as_deref());
            let leaf = spec.producer(Producer::External(source));
            let n = spec
                .operator(Arc::new(f), &[leaf])
                .map_err(|e| op_err(lex, e))?;
            (n, process)
        }
        "and" | "seq" => {
            let copy = match lex.next() {
                Some(Tok::Int(c)) if c >= 1 => c as usize,
                other => return Err(err(lex, format!("expected copy index, found {other:?}"))),
            };
            let mut inputs = Vec::new();
            while lex.peek() == Some(&Tok::Comma) {
                lex.next();
                let (n, _) = parse_expr(lex, repo, spec, bindings, process)?;
                inputs.push(n);
            }
            let op: Arc<dyn cmi_events::operator::EventOperator> = if func == "and" {
                Arc::new(AndOp::new(process, inputs.len().max(2), copy))
            } else {
                Arc::new(SeqOp::new(process, inputs.len().max(2), copy))
            };
            let n = spec.operator(op, &inputs).map_err(|e| op_err(lex, e))?;
            (n, process)
        }
        "or" => {
            let mut inputs = Vec::new();
            loop {
                let (n, _) = parse_expr(lex, repo, spec, bindings, process)?;
                inputs.push(n);
                if lex.peek() == Some(&Tok::Comma) {
                    lex.next();
                } else {
                    break;
                }
            }
            let n = spec
                .operator(Arc::new(OrOp::new(process, inputs.len().max(2))), &inputs)
                .map_err(|e| op_err(lex, e))?;
            (n, process)
        }
        "count" => {
            let (input, _) = parse_expr(lex, repo, spec, bindings, process)?;
            let n = spec
                .operator(Arc::new(CountOp::new(process)), &[input])
                .map_err(|e| op_err(lex, e))?;
            (n, process)
        }
        "compare1" => {
            let op = parse_cmp(lex)?;
            lex.expect(&Tok::Comma, "`,`")?;
            let c = match lex.next() {
                Some(Tok::Int(c)) => c,
                other => return Err(err(lex, format!("expected constant, found {other:?}"))),
            };
            lex.expect(&Tok::Comma, "`,`")?;
            let (input, _) = parse_expr(lex, repo, spec, bindings, process)?;
            let n = spec
                .operator(Arc::new(Compare1Op::new(process, op, c)), &[input])
                .map_err(|e| op_err(lex, e))?;
            (n, process)
        }
        "compare2" => {
            let op = parse_cmp(lex)?;
            lex.expect(&Tok::Comma, "`,`")?;
            let (a, _) = parse_expr(lex, repo, spec, bindings, process)?;
            lex.expect(&Tok::Comma, "`,`")?;
            let (b, _) = parse_expr(lex, repo, spec, bindings, process)?;
            let n = spec
                .operator(Arc::new(Compare2Op::new(process, op)), &[a, b])
                .map_err(|e| op_err(lex, e))?;
            (n, process)
        }
        "translate" => {
            let var_name = lex.ident("activity variable")?;
            lex.expect(&Tok::Comma, "`,`")?;
            let schema = repo
                .activity_schema(process)
                .map_err(|e| err(lex, e.to_string()))?;
            let var = schema
                .activity_var(&var_name)
                .map_err(|e| err(lex, e.to_string()))?;
            let invoked = var.schema;
            // The inner expression is relative to the invoked schema.
            let (inner, inner_p) = parse_expr(lex, repo, spec, bindings, invoked)?;
            if inner_p != invoked {
                return Err(err(
                    lex,
                    format!(
                        "translate({var_name}, …): inner expression is relative to {inner_p}, \
                         expected the invoked schema {invoked}"
                    ),
                ));
            }
            let act = spec.producer(Producer::Activity);
            let n = spec
                .operator(
                    Arc::new(TranslateOp::new(process, invoked, var.id)),
                    &[act, inner],
                )
                .map_err(|e| op_err(lex, e))?;
            (n, process)
        }
        other => return Err(err(lex, format!("unknown operator `{other}`"))),
    };
    lex.expect(&Tok::RParen, "`)`")?;
    Ok(bound)
}

fn parse_cmp(lex: &mut Lexer) -> DslResult<CmpOp> {
    let line = lex.line();
    match lex.next() {
        Some(Tok::Op(op)) => Ok(op),
        other => Err(DslError {
            line,
            message: format!("expected comparison operator, found {other:?}"),
        }),
    }
}

/// Parses `S1|S2|…` or `*` (wildcard → `None`).
fn parse_states(lex: &mut Lexer) -> DslResult<Option<std::collections::BTreeSet<String>>> {
    if lex.peek() == Some(&Tok::Star) {
        lex.next();
        return Ok(None);
    }
    let mut states = std::collections::BTreeSet::new();
    states.insert(lex.ident("state name")?);
    while lex.peek() == Some(&Tok::Pipe) {
        lex.next();
        states.insert(lex.ident("state name")?);
    }
    Ok(Some(states))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmi_core::schema::ActivitySchemaBuilder;
    use cmi_core::state_schema::ActivityStateSchema;

    fn repo_with_info_request() -> SchemaRepository {
        let repo = SchemaRepository::new();
        let ss = repo
            .register_state_schema(ActivityStateSchema::generic(repo.fresh_state_schema_id()));
        let basic = repo.fresh_activity_schema_id();
        repo.register_activity_schema(
            ActivitySchemaBuilder::basic(basic, "Gather", ss.clone())
                .build()
                .unwrap(),
        );
        // Subprocess used by translate tests.
        let sub = repo.fresh_activity_schema_id();
        let mut sb = ActivitySchemaBuilder::process(sub, "LabTest", ss.clone());
        sb.activity_var("run", basic, false).unwrap();
        repo.register_activity_schema(sb.build().unwrap());
        let pid = repo.fresh_activity_schema_id();
        let mut pb = ActivitySchemaBuilder::process(pid, "InfoRequest", ss);
        pb.activity_var("gather", basic, false).unwrap();
        pb.activity_var("lab", sub, true).unwrap();
        repo.register_activity_schema(pb.build().unwrap());
        repo
    }

    const SECTION_5_4: &str = r#"
        # The paper's deadline-violation example.
        awareness "AS_InfoRequest" on "InfoRequest" {
            op1  = context_filter(TaskForceContext, TaskForceDeadline)
            op2  = context_filter(InfoRequestContext, RequestDeadline)
            viol = compare2(<=, op1, op2)
            deliver viol to scoped(InfoRequestContext, Requestor) assign identity
            describe "task force deadline moved before the request deadline"
        }
    "#;

    #[test]
    fn parses_the_section_5_4_example() {
        let repo = repo_with_info_request();
        let mut id = 1;
        let schemas = parse(SECTION_5_4, &repo, &mut id).unwrap();
        assert_eq!(schemas.len(), 1);
        let s = &schemas[0];
        assert_eq!(s.name, "AS_InfoRequest");
        assert_eq!(s.operator_count(), 4);
        assert_eq!(
            s.delivery_role,
            RoleSpec::scoped("InfoRequestContext", "Requestor")
        );
        assert_eq!(s.assignment, RoleAssignment::Identity);
        assert!(s.event_description.contains("deadline"));
        assert_eq!(id, 2);
    }

    #[test]
    fn parses_activity_filters_count_and_compare1() {
        let repo = repo_with_info_request();
        let src = r#"
            awareness "three-gathers" on InfoRequest {
                done = activity_filter(gather, Completed)
                n    = count(done)
                gate = compare1(>=, 3, n)
                deliver gate to org(health-crisis-leader) assign least-loaded(2)
            }
        "#;
        let mut id = 10;
        let s = &parse(src, &repo, &mut id).unwrap()[0];
        assert_eq!(s.assignment, RoleAssignment::LeastLoaded { n: 2 });
        assert_eq!(s.operator_count(), 4);
        assert_eq!(s.event_description, "three-gathers", "defaults to name");
    }

    #[test]
    fn parses_and_or_seq_with_inline_and_named_operands() {
        let repo = repo_with_info_request();
        let src = r#"
            awareness "combo" on InfoRequest {
                a = context_filter(C, x)
                both = and(1, a, context_filter(C, y))
                anyof = or(both, context_filter(C, z))
                chain = seq(2, a, anyof)
                deliver chain to org(watchers)
            }
        "#;
        let mut id = 1;
        let s = &parse(src, &repo, &mut id).unwrap()[0];
        assert!(s.operator_count() >= 6);
    }

    #[test]
    fn translate_evaluates_inner_relative_to_invoked_schema() {
        let repo = repo_with_info_request();
        let src = r#"
            awareness "lab-status" on InfoRequest {
                inner = translate(lab, process_filter(Completed|Terminated))
                deliver inner to org(requestors)
            }
        "#;
        let mut id = 1;
        let s = &parse(src, &repo, &mut id).unwrap()[0];
        // translate + inner filter + output = 3 operators.
        assert_eq!(s.operator_count(), 3);
        assert_eq!(s.process, repo.activity_schema_by_name("InfoRequest").unwrap().id());
    }

    #[test]
    fn wildcard_states_and_external_source() {
        let repo = repo_with_info_request();
        let src = r#"
            awareness "ext" on InfoRequest {
                any = activity_filter(gather, *)
                news = external(news-service, queryId)
                both = and(2, any, news)
                deliver both to org(watchers) assign signed-on
            }
        "#;
        let mut id = 1;
        let s = &parse(src, &repo, &mut id).unwrap()[0];
        assert_eq!(s.assignment, RoleAssignment::SignedOn);
    }

    #[test]
    fn priority_statement_parses() {
        let repo = repo_with_info_request();
        let src = r#"
            awareness "urgent" on InfoRequest {
                a = context_filter(C, f)
                deliver a to org(r)
                priority high
            }
        "#;
        let s = &parse(src, &repo, &mut 1).unwrap()[0];
        assert_eq!(s.priority, Priority::High);
        // Default is Normal; unknown levels error with a line number.
        let src_default = r#"
            awareness "plain" on InfoRequest {
                a = context_filter(C, f)
                deliver a to org(r)
            }
        "#;
        assert_eq!(parse(src_default, &repo, &mut 1).unwrap()[0].priority, Priority::Normal);
        let bad = r#"
            awareness "x" on InfoRequest {
                a = context_filter(C, f)
                deliver a to org(r)
                priority shrill
            }
        "#;
        assert!(parse(bad, &repo, &mut 1).unwrap_err().message.contains("unknown priority"));
    }

    #[test]
    fn multiple_schemas_in_one_source() {
        let repo = repo_with_info_request();
        let src = r#"
            awareness "a" on InfoRequest {
                x = context_filter(C, f)
                deliver x to org(r1)
            }
            awareness "b" on InfoRequest {
                y = context_filter(C, g)
                deliver y to org(r2)
            }
        "#;
        let mut id = 1;
        let schemas = parse(src, &repo, &mut id).unwrap();
        assert_eq!(schemas.len(), 2);
        assert_ne!(schemas[0].id, schemas[1].id);
    }

    #[test]
    fn error_reporting_includes_line_numbers() {
        let repo = repo_with_info_request();
        let src = "awareness \"x\" on \"Nope\" {\n}\n";
        let e = parse(src, &repo, &mut 1).unwrap_err();
        assert!(e.to_string().contains("unknown process schema"));

        let src = r#"
            awareness "x" on InfoRequest {
                a = bogus_op(1)
                deliver a to org(r)
            }
        "#;
        let e = parse(src, &repo, &mut 1).unwrap_err();
        assert!(e.message.contains("unknown operator"));
        assert_eq!(e.line, 3);
    }

    #[test]
    fn missing_deliver_is_rejected() {
        let repo = repo_with_info_request();
        let src = r#"
            awareness "x" on InfoRequest {
                a = context_filter(C, f)
            }
        "#;
        let e = parse(src, &repo, &mut 1).unwrap_err();
        assert!(e.message.contains("no `deliver`"));
    }

    #[test]
    fn unknown_var_and_unterminated_string() {
        let repo = repo_with_info_request();
        let src = r#"
            awareness "x" on InfoRequest {
                a = activity_filter(nonexistent, Completed)
                deliver a to org(r)
            }
        "#;
        assert!(parse(src, &repo, &mut 1).is_err());
        assert!(Lexer::new("describe \"oops").is_err());
    }
}
