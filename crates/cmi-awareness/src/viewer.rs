//! The awareness information viewer — the participant-side client (§6.5).
//!
//! "The awareness information viewer in the CMI Client for Participants is
//! responsible for registering an interest in the event queue for its user,
//! retrieving event information, and displaying it to him."

use std::sync::Arc;

use cmi_core::ids::UserId;
use cmi_core::participant::Directory;

use crate::queue::{DeliveryQueue, Notification};

/// One aggregated line of the viewer's digest: all pending notifications of
/// one awareness schema about one process instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestEntry {
    /// The awareness schema's name.
    pub schema_name: String,
    /// The (most recent) event description.
    pub description: String,
    /// The process instance the events are about.
    pub process_instance: cmi_core::ids::ProcessInstanceId,
    /// How many pending notifications were aggregated.
    pub count: usize,
    /// Time of the most recent one.
    pub latest: cmi_core::time::Timestamp,
    /// Highest priority among them.
    pub max_priority: crate::queue::Priority,
}

/// A per-participant viewer session over the delivery queue.
pub struct AwarenessViewer {
    queue: Arc<DeliveryQueue>,
    directory: Arc<Directory>,
    user: UserId,
}

impl AwarenessViewer {
    /// Opens a viewer for `user` and signs them on (awareness assignment
    /// functions may consult the signed-on flag).
    pub fn sign_on(
        queue: Arc<DeliveryQueue>,
        directory: Arc<Directory>,
        user: UserId,
    ) -> cmi_core::error::CoreResult<Self> {
        directory.set_signed_on(user, true)?;
        Ok(AwarenessViewer {
            queue,
            directory,
            user,
        })
    }

    /// The viewing user.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// Retrieves up to `max` pending notifications without consuming them.
    pub fn peek(&self, max: usize) -> Vec<Notification> {
        self.queue.fetch(self.user, max)
    }

    /// Retrieves and acknowledges up to `max` notifications; acknowledged
    /// notifications never reappear, even across engine restarts. The user's
    /// load figure drops accordingly.
    pub fn take(&self, max: usize) -> Vec<Notification> {
        let batch = self.queue.fetch(self.user, max);
        if let Some(last) = batch.last() {
            let _ = self.queue.ack(self.user, last.seq);
            let _ = self
                .directory
                .adjust_load(self.user, -(batch.len() as i32));
        }
        batch
    }

    /// Retrieves and acknowledges up to `max` notifications in **priority
    /// order** (high first, then oldest). Uses exact acknowledgement so
    /// lower-priority items left behind are not lost.
    pub fn take_prioritized(&self, max: usize) -> Vec<Notification> {
        let batch = self.queue.fetch_prioritized(self.user, max);
        if !batch.is_empty() {
            let seqs: Vec<u64> = batch.iter().map(|n| n.seq).collect();
            let _ = self.queue.ack_exact(self.user, &seqs);
            let _ = self
                .directory
                .adjust_load(self.user, -(batch.len() as i32));
        }
        batch
    }

    /// Aggregates the pending notifications into a digest: one entry per
    /// (awareness schema, process instance), with the count, the most recent
    /// time and the highest priority (§6.5's "event aggregation"). Does not
    /// consume anything.
    pub fn digest(&self) -> Vec<DigestEntry> {
        let mut map: std::collections::BTreeMap<
            (cmi_core::ids::AwarenessSchemaId, cmi_core::ids::ProcessInstanceId),
            DigestEntry,
        > = std::collections::BTreeMap::new();
        for n in self.queue.fetch(self.user, usize::MAX) {
            let e = map
                .entry((n.schema, n.process_instance))
                .or_insert_with(|| DigestEntry {
                    schema_name: n.schema_name.clone(),
                    description: n.description.clone(),
                    process_instance: n.process_instance,
                    count: 0,
                    latest: n.time,
                    max_priority: n.priority,
                });
            e.count += 1;
            e.latest = e.latest.max(n.time);
            e.max_priority = e.max_priority.max(n.priority);
            e.description = n.description.clone(); // most recent wording
        }
        map.into_values().collect()
    }

    /// Number of unread notifications.
    pub fn unread(&self) -> usize {
        self.queue.pending_for(self.user)
    }

    /// Renders a notification the way the viewer displays it. High-priority
    /// notifications carry a `(!)` marker.
    pub fn render(n: &Notification) -> String {
        let marker = if n.priority == crate::queue::Priority::High {
            "(!) "
        } else {
            ""
        };
        let mut s = format!(
            "{marker}[{}] {} — {} (process {} / instance {})",
            n.time, n.schema_name, n.description, n.process_schema, n.process_instance
        );
        if let Some(i) = n.int_info {
            s.push_str(&format!(" [value: {i}]"));
        }
        if let Some(t) = &n.str_info {
            s.push_str(&format!(" [{t}]"));
        }
        s
    }

    /// Signs the user off.
    pub fn sign_off(self) {
        let _ = self.directory.set_signed_on(self.user, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmi_core::ids::{AwarenessSchemaId, ProcessInstanceId, ProcessSchemaId};
    use cmi_core::time::Timestamp;

    fn notif(user: UserId, seq_hint: &str) -> Notification {
        Notification {
            seq: 0,
            user,
            time: Timestamp::from_millis(1500),
            schema: AwarenessSchemaId(1),
            schema_name: "AS_InfoRequest".into(),
            description: seq_hint.into(),
            process_schema: ProcessSchemaId(1),
            process_instance: ProcessInstanceId(2),
            int_info: Some(42),
            str_info: Some("positive".into()),
            priority: crate::queue::Priority::Normal,
        }
    }

    #[test]
    fn sign_on_take_and_ack_cycle() {
        let q = Arc::new(DeliveryQueue::in_memory());
        let d = Arc::new(Directory::new());
        let u = d.add_user("alice");
        d.set_load(u, 2).unwrap();
        q.enqueue(notif(u, "first")).unwrap();
        q.enqueue(notif(u, "second")).unwrap();

        let v = AwarenessViewer::sign_on(q.clone(), d.clone(), u).unwrap();
        assert!(d.participant(u).unwrap().signed_on);
        assert_eq!(v.unread(), 2);
        assert_eq!(v.peek(10).len(), 2);
        assert_eq!(v.unread(), 2, "peek does not consume");

        let got = v.take(1);
        assert_eq!(got[0].description, "first");
        assert_eq!(v.unread(), 1);
        assert_eq!(d.participant(u).unwrap().load, 1, "load decremented");

        let got = v.take(10);
        assert_eq!(got[0].description, "second");
        assert_eq!(v.unread(), 0);

        v.sign_off();
        assert!(!d.participant(u).unwrap().signed_on);
    }

    #[test]
    fn take_on_empty_queue_is_noop() {
        let q = Arc::new(DeliveryQueue::in_memory());
        let d = Arc::new(Directory::new());
        let u = d.add_user("bob");
        let v = AwarenessViewer::sign_on(q, d, u).unwrap();
        assert!(v.take(5).is_empty());
    }

    #[test]
    fn prioritized_take_serves_high_first_without_losing_low() {
        let q = Arc::new(DeliveryQueue::in_memory());
        let d = Arc::new(Directory::new());
        let u = d.add_user("alice");
        let mut low = notif(u, "routine");
        low.priority = crate::queue::Priority::Low;
        let mut high = notif(u, "deadline!");
        high.priority = crate::queue::Priority::High;
        q.enqueue(low).unwrap();
        q.enqueue(notif(u, "normal")).unwrap();
        q.enqueue(high).unwrap();

        let v = AwarenessViewer::sign_on(q.clone(), d, u).unwrap();
        let first = v.take_prioritized(1);
        assert_eq!(first[0].description, "deadline!");
        // The earlier, lower-priority items are still pending.
        assert_eq!(v.unread(), 2);
        let rest = v.take_prioritized(10);
        assert_eq!(
            rest.iter().map(|n| n.description.as_str()).collect::<Vec<_>>(),
            vec!["normal", "routine"]
        );
        assert_eq!(v.unread(), 0);
    }

    #[test]
    fn digest_groups_by_schema_and_instance() {
        let q = Arc::new(DeliveryQueue::in_memory());
        let d = Arc::new(Directory::new());
        let u = d.add_user("alice");
        for i in 0..3 {
            let mut n = notif(u, &format!("update {i}"));
            n.time = Timestamp::from_millis(i);
            if i == 2 {
                n.priority = crate::queue::Priority::High;
            }
            q.enqueue(n).unwrap();
        }
        let mut other = notif(u, "elsewhere");
        other.process_instance = ProcessInstanceId(9);
        q.enqueue(other).unwrap();

        let v = AwarenessViewer::sign_on(q, d, u).unwrap();
        let digest = v.digest();
        assert_eq!(digest.len(), 2);
        let main = digest.iter().find(|e| e.process_instance == ProcessInstanceId(2)).unwrap();
        assert_eq!(main.count, 3);
        assert_eq!(main.latest, Timestamp::from_millis(2));
        assert_eq!(main.max_priority, crate::queue::Priority::High);
        assert_eq!(main.description, "update 2");
        assert_eq!(v.unread(), 4, "digest does not consume");
    }

    #[test]
    fn render_marks_high_priority() {
        let d = Directory::new();
        let u = d.add_user("x");
        let mut n = notif(u, "urgent");
        n.priority = crate::queue::Priority::High;
        assert!(AwarenessViewer::render(&n).starts_with("(!) "));
    }

    #[test]
    fn render_shows_all_relevant_fields() {
        let d = Directory::new();
        let u = d.add_user("x");
        let s = AwarenessViewer::render(&notif(u, "deadline moved"));
        assert!(s.contains("AS_InfoRequest"));
        assert!(s.contains("deadline moved"));
        assert!(s.contains("[value: 42]"));
        assert!(s.contains("[positive]"));
    }
}
