//! Persistent per-participant awareness queues (§6.5).
//!
//! "A persistent queue is necessary because a participant is not assumed to
//! be logged-on to the system when he receives an awareness event." This
//! module provides that queue: notifications are appended to a write-ahead
//! log before being made visible, acknowledgements are logged too, and
//! recovery replays the log — so after a crash every unacknowledged
//! notification is still waiting and acknowledged ones do not reappear.
//!
//! The WAL is JSON-lines: one self-describing record per line. A torn final
//! line (partial write at crash) is detected and dropped during recovery.

use std::collections::{BTreeMap, VecDeque};
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use cmi_core::ids::{AwarenessSchemaId, ProcessInstanceId, ProcessSchemaId, UserId};
use cmi_core::time::Timestamp;
use cmi_obs::{Counter, Gauge, ObsRegistry};

/// Notification priority (§6.5 lists priority as under consideration; this
/// implementation provides three levels). Order: `Low < Normal < High`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Background information.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Requires prompt attention (e.g. deadline violations).
    High,
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        })
    }
}

/// One awareness notification queued for one participant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Notification {
    /// Global sequence number (assigned by the queue; total order).
    pub seq: u64,
    /// The recipient.
    pub user: UserId,
    /// Detection time.
    pub time: Timestamp,
    /// The awareness schema that produced it.
    pub schema: AwarenessSchemaId,
    /// The awareness schema's name.
    pub schema_name: String,
    /// The user-friendly description from the output operator.
    pub description: String,
    /// The process schema the detected event is relative to.
    pub process_schema: ProcessSchemaId,
    /// The process instance the detected event is relative to.
    pub process_instance: ProcessInstanceId,
    /// The canonical `intInfo`, if set.
    pub int_info: Option<i64>,
    /// The canonical `strInfo`, if set.
    pub str_info: Option<String>,
    /// Delivery priority (absent in older WALs → `Normal`).
    pub priority: Priority,
}

/// A WAL line, tagged by its `"kind"` field: `event`, `ack` or `ack_one`.
#[derive(Debug)]
enum WalRecord {
    Event(Notification),
    Ack {
        user: UserId,
        /// All notifications for `user` with `seq <= up_to` are acknowledged.
        up_to: u64,
    },
    /// A single notification acknowledged out of order (priority
    /// consumption).
    AckOne { user: UserId, seq: u64 },
}

impl WalRecord {
    /// Serializes the record as one JSON object (no trailing newline).
    fn to_json(&self) -> String {
        let mut s = String::with_capacity(128);
        match self {
            WalRecord::Event(n) => {
                s.push_str("{\"kind\":\"event\"");
                s.push_str(&format!(",\"seq\":{}", n.seq));
                s.push_str(&format!(",\"user\":{}", n.user.raw()));
                s.push_str(&format!(",\"time\":{}", n.time.millis()));
                s.push_str(&format!(",\"schema\":{}", n.schema.raw()));
                s.push_str(",\"schema_name\":");
                json::write_str(&n.schema_name, &mut s);
                s.push_str(",\"description\":");
                json::write_str(&n.description, &mut s);
                s.push_str(&format!(",\"process_schema\":{}", n.process_schema.raw()));
                s.push_str(&format!(
                    ",\"process_instance\":{}",
                    n.process_instance.raw()
                ));
                match n.int_info {
                    Some(i) => s.push_str(&format!(",\"int_info\":{i}")),
                    None => s.push_str(",\"int_info\":null"),
                }
                s.push_str(",\"str_info\":");
                match &n.str_info {
                    Some(v) => json::write_str(v, &mut s),
                    None => s.push_str("null"),
                }
                s.push_str(&format!(",\"priority\":\"{}\"", n.priority));
                s.push('}');
            }
            WalRecord::Ack { user, up_to } => {
                s.push_str(&format!(
                    "{{\"kind\":\"ack\",\"user\":{},\"up_to\":{up_to}}}",
                    user.raw()
                ));
            }
            WalRecord::AckOne { user, seq } => {
                s.push_str(&format!(
                    "{{\"kind\":\"ack_one\",\"user\":{},\"seq\":{seq}}}",
                    user.raw()
                ));
            }
        }
        s
    }

    /// Parses one WAL line. Returns `None` for torn, corrupt or unknown
    /// records (recovery drops them).
    fn from_json(line: &str) -> Option<WalRecord> {
        let obj = json::parse_object(line)?;
        match obj.get("kind")?.as_str()? {
            "event" => Some(WalRecord::Event(Notification {
                seq: obj.get("seq")?.as_u64()?,
                user: UserId(obj.get("user")?.as_u64()?),
                time: Timestamp::from_millis(obj.get("time")?.as_u64()?),
                schema: AwarenessSchemaId(obj.get("schema")?.as_u64()?),
                schema_name: obj.get("schema_name")?.as_str()?.to_owned(),
                description: obj.get("description")?.as_str()?.to_owned(),
                process_schema: ProcessSchemaId(obj.get("process_schema")?.as_u64()?),
                process_instance: ProcessInstanceId(obj.get("process_instance")?.as_u64()?),
                int_info: match obj.get("int_info") {
                    None | Some(json::Value::Null) => None,
                    Some(v) => Some(v.as_i64()?),
                },
                str_info: match obj.get("str_info") {
                    None | Some(json::Value::Null) => None,
                    Some(v) => Some(v.as_str()?.to_owned()),
                },
                // Absent in older WALs → `Normal` (the default).
                priority: match obj.get("priority") {
                    None => Priority::default(),
                    Some(v) => match v.as_str()? {
                        "low" => Priority::Low,
                        "normal" => Priority::Normal,
                        "high" => Priority::High,
                        _ => return None,
                    },
                },
            })),
            "ack" => Some(WalRecord::Ack {
                user: UserId(obj.get("user")?.as_u64()?),
                up_to: obj.get("up_to")?.as_u64()?,
            }),
            "ack_one" => Some(WalRecord::AckOne {
                user: UserId(obj.get("user")?.as_u64()?),
                seq: obj.get("seq")?.as_u64()?,
            }),
            _ => None,
        }
    }
}

/// Minimal JSON reader/writer for the WAL's flat records. The build
/// environment has no crates registry, so rather than pulling in a JSON
/// dependency the queue serializes its three record shapes by hand. The
/// parser accepts any flat JSON object with string / integer / null values
/// and rejects (returns `None` for) everything else — which is exactly the
/// robustness recovery needs: a torn or corrupt line parses to `None` and
/// is dropped.
mod json {
    use std::collections::BTreeMap;

    /// A parsed field value.
    #[derive(Debug, PartialEq)]
    pub enum Value {
        Null,
        Str(String),
        Int(i64),
    }

    impl Value {
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_i64(&self) -> Option<i64> {
            match self {
                Value::Int(i) => Some(*i),
                _ => None,
            }
        }

        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Int(i) if *i >= 0 => Some(*i as u64),
                _ => None,
            }
        }
    }

    /// Writes `s` as a JSON string literal (with escaping) onto `out`.
    pub fn write_str(s: &str, out: &mut String) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Parses a flat JSON object (string / integer / null values only).
    /// Returns `None` on any syntax error or unsupported construct.
    pub fn parse_object(input: &str) -> Option<BTreeMap<String, Value>> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let obj = p.object()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return None; // trailing garbage
        }
        Some(obj)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn bump(&mut self) -> Option<u8> {
            let b = self.peek()?;
            self.pos += 1;
            Some(b)
        }

        fn expect(&mut self, b: u8) -> Option<()> {
            (self.bump()? == b).then_some(())
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn object(&mut self) -> Option<BTreeMap<String, Value>> {
            self.expect(b'{')?;
            let mut map = BTreeMap::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Some(map);
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let value = self.value()?;
                map.insert(key, value);
                self.skip_ws();
                match self.bump()? {
                    b',' => continue,
                    b'}' => return Some(map),
                    _ => return None,
                }
            }
        }

        fn value(&mut self) -> Option<Value> {
            match self.peek()? {
                b'"' => Some(Value::Str(self.string()?)),
                b'n' => {
                    self.literal(b"null")?;
                    Some(Value::Null)
                }
                b'-' | b'0'..=b'9' => self.number(),
                _ => None,
            }
        }

        fn literal(&mut self, lit: &[u8]) -> Option<()> {
            for &b in lit {
                self.expect(b)?;
            }
            Some(())
        }

        fn number(&mut self) -> Option<Value> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            let digits_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == digits_start {
                return None;
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()?
                .parse()
                .ok()
                .map(Value::Int)
        }

        fn string(&mut self) -> Option<String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.bump()? {
                    b'"' => return Some(out),
                    b'\\' => match self.bump()? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return None;
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).ok()?;
                            self.pos += 4;
                            let code = u32::from_str_radix(hex, 16).ok()?;
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    },
                    b => {
                        // Re-decode multi-byte UTF-8 sequences from the raw
                        // bytes (strings arrive as valid UTF-8 already).
                        if b < 0x80 {
                            out.push(b as char);
                        } else {
                            let len = match b {
                                0xC0..=0xDF => 2,
                                0xE0..=0xEF => 3,
                                0xF0..=0xF7 => 4,
                                _ => return None,
                            };
                            let start = self.pos - 1;
                            if start + len > self.bytes.len() {
                                return None;
                            }
                            let s = std::str::from_utf8(&self.bytes[start..start + len]).ok()?;
                            out.push_str(s);
                            self.pos = start + len;
                        }
                    }
                }
            }
        }
    }
}

#[derive(Debug, Default)]
struct QueueState {
    next_seq: u64,
    pending: BTreeMap<UserId, VecDeque<Notification>>,
    acked: BTreeMap<UserId, u64>,
    acked_exact: BTreeMap<UserId, std::collections::BTreeSet<u64>>,
}

/// The queue's registry handles (see [`DeliveryQueue::attach_obs`]).
#[derive(Debug)]
struct QueueObs {
    enqueued: Counter,
    acked: Counter,
    pending: Gauge,
}

/// An enqueue subscriber: called (outside the queue's state lock) with the
/// recipient of every newly enqueued notification. Returning `false`
/// unsubscribes the hook — that is how a hook owned by a shut-down consumer
/// (e.g. a reactor event loop holding only a `Weak` back-reference)
/// removes itself.
pub type EnqueueHook = Box<dyn Fn(UserId) -> bool + Send + Sync>;

/// The delivery queue. With a path it is durable (WAL + recovery); without,
/// it is an in-memory queue with identical semantics.
pub struct DeliveryQueue {
    state: Mutex<QueueState>,
    wal: Mutex<Option<File>>,
    path: Option<PathBuf>,
    obs: Mutex<Option<QueueObs>>,
    hooks: Mutex<Vec<EnqueueHook>>,
}

impl std::fmt::Debug for DeliveryQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeliveryQueue")
            .field("durable", &self.path.is_some())
            .field("pending", &self.pending_total())
            .finish()
    }
}

impl DeliveryQueue {
    /// An in-memory (non-durable) queue.
    pub fn in_memory() -> Self {
        DeliveryQueue {
            state: Mutex::new(QueueState {
                next_seq: 1,
                ..QueueState::default()
            }),
            wal: Mutex::new(None),
            path: None,
            obs: Mutex::new(None),
            hooks: Mutex::new(Vec::new()),
        }
    }

    /// Attaches an observability registry: enqueues and acks are counted
    /// (`cmi_queue_enqueued` / `cmi_queue_acked`) and the live depth is
    /// published as the `cmi_queue_pending` gauge, seeded with whatever is
    /// already pending (e.g. after WAL recovery).
    pub fn attach_obs(&self, obs: &ObsRegistry) {
        let q = QueueObs {
            enqueued: obs.counter("cmi_queue_enqueued"),
            acked: obs.counter("cmi_queue_acked"),
            pending: obs.gauge("cmi_queue_pending"),
        };
        q.pending.set(self.pending_total() as i64);
        *self.obs.lock() = Some(q);
    }

    /// Opens (or creates) a durable queue at `path`, replaying any existing
    /// WAL. Unacknowledged notifications become pending again.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let mut state = QueueState {
            next_seq: 1,
            ..QueueState::default()
        };
        if path.exists() {
            let mut reader = BufReader::new(File::open(path)?);
            let mut events: Vec<Notification> = Vec::new();
            let mut buf = Vec::new();
            loop {
                buf.clear();
                if reader.read_until(b'\n', &mut buf)? == 0 {
                    break;
                }
                // Corrupt bytes (torn append, disk damage) must never abort
                // recovery: any line that is not valid UTF-8 JSON of a known
                // record is dropped; it was never acknowledged to a producer.
                let Ok(line) = std::str::from_utf8(&buf) else {
                    continue;
                };
                let Some(rec) = WalRecord::from_json(line.trim_end()) else {
                    continue;
                };
                match rec {
                    WalRecord::Event(n) => {
                        state.next_seq = state.next_seq.max(n.seq + 1);
                        events.push(n);
                    }
                    WalRecord::Ack { user, up_to } => {
                        let e = state.acked.entry(user).or_insert(0);
                        *e = (*e).max(up_to);
                    }
                    WalRecord::AckOne { user, seq } => {
                        state.acked_exact.entry(user).or_default().insert(seq);
                    }
                }
            }
            for n in events {
                let prefix_acked = state.acked.get(&n.user).copied().unwrap_or(0) >= n.seq;
                let exact_acked = state
                    .acked_exact
                    .get(&n.user)
                    .is_some_and(|s| s.contains(&n.seq));
                if !prefix_acked && !exact_acked {
                    state.pending.entry(n.user).or_default().push_back(n);
                }
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(DeliveryQueue {
            state: Mutex::new(state),
            wal: Mutex::new(Some(file)),
            path: Some(path.to_owned()),
            obs: Mutex::new(None),
            hooks: Mutex::new(Vec::new()),
        })
    }

    /// Subscribes `hook` to enqueue notifications: it runs after every
    /// successful [`DeliveryQueue::enqueue`], outside the queue's state
    /// lock, with the recipient's id. Event-driven consumers (the reactor
    /// net backend) use this to get woken on new work instead of
    /// tick-polling [`DeliveryQueue::fetch`].
    pub fn subscribe_enqueue(&self, hook: EnqueueHook) {
        self.hooks.lock().push(hook);
    }

    /// Enqueues a notification for its recipient, assigning the sequence
    /// number and logging before making it visible. Returns the sequence
    /// number.
    pub fn enqueue(&self, mut n: Notification) -> std::io::Result<u64> {
        let user = n.user;
        let seq = {
            let mut state = self.state.lock();
            n.seq = state.next_seq;
            state.next_seq += 1;
            self.append(&WalRecord::Event(n.clone()))?;
            let seq = n.seq;
            state.pending.entry(n.user).or_default().push_back(n);
            seq
        };
        if let Some(o) = self.obs.lock().as_ref() {
            o.enqueued.inc();
            o.pending.add(1);
        }
        // Enqueue hooks run outside the state lock so they may call back
        // into the queue (fetch) or take unrelated locks without deadlock.
        let mut hooks = self.hooks.lock();
        if !hooks.is_empty() {
            hooks.retain(|h| h(user));
        }
        Ok(seq)
    }

    /// Returns (without removing) up to `max` pending notifications for the
    /// user, oldest first.
    pub fn fetch(&self, user: UserId, max: usize) -> Vec<Notification> {
        let state = self.state.lock();
        state
            .pending
            .get(&user)
            .map(|q| q.iter().take(max).cloned().collect())
            .unwrap_or_default()
    }

    /// Acknowledges every notification for `user` with `seq <= up_to`,
    /// removing them from the pending queue (durably, if the queue is).
    pub fn ack(&self, user: UserId, up_to: u64) -> std::io::Result<usize> {
        let mut state = self.state.lock();
        self.append(&WalRecord::Ack { user, up_to })?;
        let e = state.acked.entry(user).or_insert(0);
        *e = (*e).max(up_to);
        let q = state.pending.entry(user).or_default();
        let before = q.len();
        q.retain(|n| n.seq > up_to);
        let removed = before - q.len();
        if let Some(o) = self.obs.lock().as_ref() {
            o.acked.add(removed as u64);
            o.pending.add(-(removed as i64));
        }
        Ok(removed)
    }

    /// Acknowledges exactly the given sequence numbers for `user` (used by
    /// priority-ordered consumption, where acknowledged items need not be a
    /// prefix). Returns how many were removed.
    pub fn ack_exact(&self, user: UserId, seqs: &[u64]) -> std::io::Result<usize> {
        let mut state = self.state.lock();
        for &seq in seqs {
            self.append(&WalRecord::AckOne { user, seq })?;
            state.acked_exact.entry(user).or_default().insert(seq);
        }
        let set: std::collections::BTreeSet<u64> = seqs.iter().copied().collect();
        let q = state.pending.entry(user).or_default();
        let before = q.len();
        q.retain(|n| !set.contains(&n.seq));
        let removed = before - q.len();
        if let Some(o) = self.obs.lock().as_ref() {
            o.acked.add(removed as u64);
            o.pending.add(-(removed as i64));
        }
        Ok(removed)
    }

    /// Returns (without removing) up to `max` pending notifications for the
    /// user ordered by priority (high first), ties broken oldest-first.
    pub fn fetch_prioritized(&self, user: UserId, max: usize) -> Vec<Notification> {
        let state = self.state.lock();
        let Some(q) = state.pending.get(&user) else {
            return Vec::new();
        };
        let mut all: Vec<Notification> = q.iter().cloned().collect();
        all.sort_by(|a, b| b.priority.cmp(&a.priority).then(a.seq.cmp(&b.seq)));
        all.truncate(max);
        all
    }

    /// Number of pending notifications for `user`.
    pub fn pending_for(&self, user: UserId) -> usize {
        self.state
            .lock()
            .pending
            .get(&user)
            .map_or(0, VecDeque::len)
    }

    /// Total pending notifications across users.
    pub fn pending_total(&self) -> usize {
        self.state.lock().pending.values().map(VecDeque::len).sum()
    }

    /// Users with at least one pending notification.
    pub fn users_with_pending(&self) -> Vec<UserId> {
        self.state
            .lock()
            .pending
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(u, _)| *u)
            .collect()
    }

    /// Rewrites the WAL to contain only the currently pending notifications,
    /// dropping acknowledged events and ack records. Returns the number of
    /// records written. The rewrite goes through a temp file + atomic rename
    /// so a crash mid-compaction leaves either the old or the new log intact.
    /// No-op (returning 0) for in-memory queues.
    pub fn compact(&self) -> std::io::Result<usize> {
        let Some(path) = &self.path else {
            return Ok(0);
        };
        // Hold both locks across the swap so no append interleaves.
        let state = self.state.lock();
        let mut wal = self.wal.lock();
        let tmp = path.with_extension("compact");
        let mut written = 0usize;
        {
            let mut f = File::create(&tmp)?;
            for q in state.pending.values() {
                for n in q {
                    let mut line = WalRecord::Event(n.clone()).to_json();
                    line.push('\n');
                    f.write_all(line.as_bytes())?;
                    written += 1;
                }
            }
            f.flush()?;
        }
        std::fs::rename(&tmp, path)?;
        *wal = Some(OpenOptions::new().append(true).open(path)?);
        Ok(written)
    }

    /// Current WAL size in bytes (0 for in-memory queues).
    pub fn wal_bytes(&self) -> u64 {
        self.path
            .as_ref()
            .and_then(|p| std::fs::metadata(p).ok())
            .map(|m| m.len())
            .unwrap_or(0)
    }

    fn append(&self, rec: &WalRecord) -> std::io::Result<()> {
        let mut wal = self.wal.lock();
        if let Some(f) = wal.as_mut() {
            let mut line = rec.to_json();
            line.push('\n');
            f.write_all(line.as_bytes())?;
            f.flush()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn notif(user: u64, desc: &str) -> Notification {
        Notification {
            seq: 0,
            user: UserId(user),
            time: Timestamp::from_millis(1),
            schema: AwarenessSchemaId(1),
            schema_name: "AS".into(),
            description: desc.into(),
            process_schema: ProcessSchemaId(1),
            process_instance: ProcessInstanceId(2),
            int_info: Some(7),
            str_info: None,
            priority: Default::default(),
        }
    }

    #[test]
    fn in_memory_fifo_per_user() {
        let q = DeliveryQueue::in_memory();
        q.enqueue(notif(1, "a")).unwrap();
        q.enqueue(notif(2, "b")).unwrap();
        q.enqueue(notif(1, "c")).unwrap();
        assert_eq!(q.pending_for(UserId(1)), 2);
        assert_eq!(q.pending_for(UserId(2)), 1);
        let got = q.fetch(UserId(1), 10);
        assert_eq!(
            got.iter().map(|n| n.description.as_str()).collect::<Vec<_>>(),
            vec!["a", "c"]
        );
        assert_eq!(got[0].seq, 1);
        assert_eq!(got[1].seq, 3);
        assert_eq!(q.users_with_pending(), vec![UserId(1), UserId(2)]);
    }

    #[test]
    fn fetch_does_not_remove_ack_does() {
        let q = DeliveryQueue::in_memory();
        q.enqueue(notif(1, "a")).unwrap();
        q.enqueue(notif(1, "b")).unwrap();
        assert_eq!(q.fetch(UserId(1), 1).len(), 1);
        assert_eq!(q.pending_for(UserId(1)), 2, "fetch is non-destructive");
        assert_eq!(q.ack(UserId(1), 1).unwrap(), 1);
        assert_eq!(q.pending_for(UserId(1)), 1);
        assert_eq!(q.fetch(UserId(1), 10)[0].description, "b");
    }

    #[test]
    fn durable_queue_survives_restart() {
        let dir = std::env::temp_dir().join(format!("cmi-q-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal-restart.jsonl");
        let _ = std::fs::remove_file(&path);

        {
            let q = DeliveryQueue::open(&path).unwrap();
            q.enqueue(notif(1, "a")).unwrap();
            q.enqueue(notif(1, "b")).unwrap();
            q.enqueue(notif(2, "c")).unwrap();
            q.ack(UserId(1), 1).unwrap();
        } // "crash"

        let q = DeliveryQueue::open(&path).unwrap();
        assert_eq!(q.pending_for(UserId(1)), 1, "acked one gone, other kept");
        assert_eq!(q.fetch(UserId(1), 10)[0].description, "b");
        assert_eq!(q.pending_for(UserId(2)), 1);
        // Sequence numbers continue after the recovered maximum.
        let s = q.enqueue(notif(3, "d")).unwrap();
        assert_eq!(s, 4);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_trailing_line_is_dropped() {
        let dir = std::env::temp_dir().join(format!("cmi-q-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal-torn.jsonl");
        let _ = std::fs::remove_file(&path);
        {
            let q = DeliveryQueue::open(&path).unwrap();
            q.enqueue(notif(1, "a")).unwrap();
        }
        // Simulate a torn append.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(b"{\"kind\":\"event\",\"seq\":99,").unwrap();
        }
        let q = DeliveryQueue::open(&path).unwrap();
        assert_eq!(q.pending_for(UserId(1)), 1);
        assert_eq!(q.fetch(UserId(1), 10)[0].description, "a");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_shrinks_wal_and_preserves_pending() {
        let dir = std::env::temp_dir().join(format!("cmi-q-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal-compact.jsonl");
        let _ = std::fs::remove_file(&path);

        let q = DeliveryQueue::open(&path).unwrap();
        for i in 0..50 {
            q.enqueue(notif(1 + i % 2, &format!("n{i}"))).unwrap();
        }
        q.ack(UserId(1), 40).unwrap();
        q.ack(UserId(2), 30).unwrap();
        let before = q.wal_bytes();
        let kept = q.compact().unwrap();
        assert_eq!(kept, q.pending_total());
        assert!(q.wal_bytes() < before, "compaction shrinks the log");

        // Pending state is unchanged, appends keep working, and the
        // compacted log recovers identically.
        let pending_user2: Vec<String> = q
            .fetch(UserId(2), 100)
            .into_iter()
            .map(|n| n.description)
            .collect();
        q.enqueue(notif(2, "after-compact")).unwrap();
        drop(q);
        let q = DeliveryQueue::open(&path).unwrap();
        let recovered: Vec<String> = q
            .fetch(UserId(2), 100)
            .into_iter()
            .map(|n| n.description)
            .collect();
        assert_eq!(&recovered[..recovered.len() - 1], &pending_user2[..]);
        assert_eq!(recovered.last().map(String::as_str), Some("after-compact"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compact_is_noop_in_memory() {
        let q = DeliveryQueue::in_memory();
        q.enqueue(notif(1, "a")).unwrap();
        assert_eq!(q.compact().unwrap(), 0);
        assert_eq!(q.wal_bytes(), 0);
        assert_eq!(q.pending_for(UserId(1)), 1);
    }

    #[test]
    fn ack_is_idempotent_and_monotonic() {
        let q = DeliveryQueue::in_memory();
        q.enqueue(notif(1, "a")).unwrap();
        q.enqueue(notif(1, "b")).unwrap();
        assert_eq!(q.ack(UserId(1), 2).unwrap(), 2);
        assert_eq!(q.ack(UserId(1), 2).unwrap(), 0);
        assert_eq!(q.ack(UserId(1), 1).unwrap(), 0, "lower ack is a no-op");
        assert_eq!(q.pending_total(), 0);
    }
}
