//! The agent pipeline — CMI's "collection of communicating agents acting as
//! a single server" (§6.1).
//!
//! The synchronous path (`AwarenessEngine::ingest` called from the event
//! source callbacks) is deterministic and is what tests and benches use. This
//! module provides the *asynchronous* deployment shape of the prototype:
//! event source agents send primitive events over a channel to a detector
//! agent thread, which performs detection and hands recognized composite
//! events to the delivery agent (here: the same `AwarenessEngine` delivery
//! path). Experiment FIG5 boots this pipeline to demonstrate the run-time
//! architecture.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Sender};

use cmi_core::context::ContextManager;
use cmi_core::instance::InstanceStore;
use cmi_events::event::Event;
use cmi_events::producers;

use crate::engine::AwarenessEngine;

/// A message on the agent channel. Event source agents hold `Sender` clones
/// that outlive the pipeline (they are captured by the store subscription
/// callbacks), so termination must be an explicit sentinel rather than
/// channel closure.
enum Msg {
    Event(Event),
    Shutdown,
}

/// A running agent pipeline. Dropping it (or calling
/// [`AgentPipeline::shutdown`]) stops the detector agent after it drains the
/// events queued ahead of the shutdown signal.
pub struct AgentPipeline {
    tx: Sender<Msg>,
    detector: Option<JoinHandle<u64>>,
}

impl AgentPipeline {
    /// Spawns the detector agent thread over `engine` and returns the
    /// pipeline handle. Use [`AgentPipeline::attach_sources`] to wire event
    /// source agents, or [`AgentPipeline::sender`] to feed events manually.
    pub fn spawn(engine: Arc<AwarenessEngine>) -> Self {
        let (tx, rx) = unbounded::<Msg>();
        let detector = std::thread::Builder::new()
            .name("cmi-detector-agent".into())
            .spawn(move || {
                let mut processed = 0u64;
                while let Ok(msg) = rx.recv() {
                    match msg {
                        Msg::Event(ev) => {
                            engine.ingest(&ev);
                            processed += 1;
                        }
                        Msg::Shutdown => break,
                    }
                }
                processed
            })
            .expect("spawn detector agent");
        AgentPipeline {
            tx,
            detector: Some(detector),
        }
    }

    /// An event source agent endpoint: a closure feeding events to the
    /// detector agent.
    pub fn sender(&self) -> impl Fn(Event) + Send + Sync + Clone {
        let tx = self.tx.clone();
        move |ev| {
            let _ = tx.send(Msg::Event(ev));
        }
    }

    /// Registers event source agents on the CORE stores: state changes and
    /// context changes are forwarded over the channel instead of being
    /// processed inline.
    pub fn attach_sources(&self, store: &InstanceStore, contexts: &ContextManager) {
        let send1 = self.sender();
        store.subscribe(Arc::new(move |change| {
            send1(producers::activity_event(change));
        }));
        let send2 = self.sender();
        contexts.subscribe(Arc::new(move |change| {
            send2(producers::context_event(change));
        }));
    }

    /// Signals shutdown and joins the detector agent, returning how many
    /// events it processed. Events sent before this call are drained first.
    pub fn shutdown(mut self) -> u64 {
        let _ = self.tx.send(Msg::Shutdown);
        self.detector
            .take()
            .map(|h| h.join().unwrap_or(0))
            .unwrap_or(0)
    }
}

impl Drop for AgentPipeline {
    fn drop(&mut self) {
        let _ = self.tx.send(Msg::Shutdown);
        if let Some(h) = self.detector.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::AwarenessSchemaBuilder;
    use crate::queue::DeliveryQueue;
    use cmi_core::ids::{AwarenessSchemaId, ProcessInstanceId, ProcessSchemaId};
    use cmi_core::participant::Directory;
    use cmi_core::roles::RoleSpec;
    use cmi_core::time::{SimClock, Timestamp};
    use cmi_core::value::Value;

    #[test]
    fn pipeline_detects_and_delivers_asynchronously() {
        let clock = SimClock::new();
        let directory = Arc::new(Directory::new());
        let contexts = Arc::new(ContextManager::new(Arc::new(clock.clone())));
        let queue = Arc::new(DeliveryQueue::in_memory());
        let engine = Arc::new(AwarenessEngine::new(
            directory.clone(),
            contexts.clone(),
            queue.clone(),
        ));
        let u = directory.add_user("watcher");
        let r = directory.add_role("watchers").unwrap();
        directory.assign(u, r).unwrap();

        let p = ProcessSchemaId(1);
        let mut b = AwarenessSchemaBuilder::new(AwarenessSchemaId(1), "AS", p);
        let f = b.context_filter("C", "x").unwrap();
        engine.register(b.deliver_to(f, RoleSpec::org("watchers")).build().unwrap());

        let pipeline = AgentPipeline::spawn(engine.clone());
        pipeline.attach_sources(
            &InstanceStore::new(
                Arc::new(clock.clone()),
                Arc::new(cmi_core::repository::SchemaRepository::new()),
            ),
            &contexts,
        );

        let ctx = contexts.create("C", Some((p, ProcessInstanceId(7))));
        for i in 0..10 {
            contexts.set_field(ctx, "x", Value::Int(i)).unwrap();
        }
        let _ = Timestamp::EPOCH;
        let processed = pipeline.shutdown();
        assert_eq!(processed, 10);
        assert_eq!(queue.pending_for(u), 10);
    }

    #[test]
    fn manual_sender_and_drop_shutdown() {
        let clock = SimClock::new();
        let directory = Arc::new(Directory::new());
        let contexts = Arc::new(ContextManager::new(Arc::new(clock.clone())));
        let queue = Arc::new(DeliveryQueue::in_memory());
        let engine = Arc::new(AwarenessEngine::new(directory, contexts, queue));
        let pipeline = AgentPipeline::spawn(engine);
        let send = pipeline.sender();
        send(Event::new(
            cmi_events::event::EventType::Activity,
            Timestamp::EPOCH,
        ));
        drop(pipeline); // joins cleanly via the shutdown sentinel
    }
}
