//! Awareness schemas `AS_P = (AD_P, R_P, RA_P)` (§5).
//!
//! An awareness schema on process schema `P` is a triplet of:
//!
//! * **`AD_P`** — an *awareness description*: a composite event specification
//!   over event sources visible in `P` (a [`CompositeEventSpec`] whose root
//!   is the implementation's output operator, §6.2);
//! * **`R_P`** — an *awareness delivery role*: a role visible in the scope of
//!   `P`, resolved **at composite event detection time** to the candidate
//!   recipients. It may be a global organizational role or a scoped role;
//!   awareness roles need not coincide with coordination roles;
//! * **`RA_P`** — an *awareness role assignment*: a function selecting the
//!   subset of the resolved candidates who actually receive the information.

use cmi_core::ids::{AwarenessSchemaId, ProcessSchemaId};
use cmi_core::roles::RoleSpec;
use cmi_events::spec::CompositeEventSpec;

use crate::assignment::RoleAssignment;

/// A complete awareness schema, ready for registration with the awareness
/// engine.
#[derive(Debug, Clone)]
pub struct AwarenessSchema {
    /// The schema's id.
    pub id: AwarenessSchemaId,
    /// The schema's name (e.g. `AS_InfoRequest`).
    pub name: String,
    /// `P` — the process schema the awareness description is over.
    pub process: ProcessSchemaId,
    /// `AD_P` — the awareness description DAG (root: output operator).
    pub description: CompositeEventSpec,
    /// `R_P` — the awareness delivery role, as a design-time role expression
    /// bound at detection time against the detected event's process instance.
    pub delivery_role: RoleSpec,
    /// `RA_P` — the role assignment function.
    pub assignment: RoleAssignment,
    /// Human-readable description stamped onto delivered events.
    pub event_description: String,
    /// Delivery priority stamped on every notification (§6.5 future work).
    pub priority: crate::queue::Priority,
}

impl AwarenessSchema {
    /// Number of operator nodes in the awareness description (excluding
    /// producer leaves).
    pub fn operator_count(&self) -> usize {
        self.description.operator_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::AwarenessSchemaBuilder;

    #[test]
    fn schema_carries_the_triplet() {
        // Built through the builder (tested in depth there); here we check
        // the triplet structure of the result.
        let p = ProcessSchemaId(1);
        let mut b = AwarenessSchemaBuilder::new(AwarenessSchemaId(1), "AS_Test", p);
        let f = b.context_filter("C", "f").unwrap();
        let schema = b
            .deliver_to(f, RoleSpec::scoped("C", "Requestor"))
            .describe("test event")
            .build()
            .unwrap();
        assert_eq!(schema.process, p);
        assert_eq!(schema.delivery_role, RoleSpec::scoped("C", "Requestor"));
        assert_eq!(schema.assignment, RoleAssignment::Identity);
        assert_eq!(schema.operator_count(), 2, "filter + output");
        assert_eq!(schema.event_description, "test event");
    }
}
