//! Ergonomic builder for awareness schemas — the programmatic counterpart of
//! the CMI graphical awareness specification tool (§6.2).
//!
//! The tool's three steps map directly: placing operator boxes =
//! `context_filter` / `activity_filter` / `and` / `seq` / … calls; drawing
//! edges = passing the returned node handles as inputs; parameter dialogs =
//! the method arguments. `deliver_to` attaches the output operator with its
//! delivery instructions, completing the awareness schema.

use std::sync::Arc;

use cmi_core::ids::{ActivityVarId, AwarenessSchemaId, ProcessSchemaId, SpecId};
use cmi_core::roles::RoleSpec;
use cmi_events::operator::CmpOp;
use cmi_events::operators::{
    ActivityFilter, AndOp, Compare1Op, Compare2Op, ContextFilter, CountOp, ExternalFilter, OrOp,
    OutputOp, SeqOp, TranslateOp,
};
use cmi_events::producers::Producer;
use cmi_events::spec::{NodeId, SpecBuilder, SpecError};

use crate::assignment::RoleAssignment;
use crate::queue::Priority;
use crate::schema::AwarenessSchema;

/// Builder state after `deliver_to`: only description/assignment remain.
pub struct AwarenessSchemaFinisher {
    inner: AwarenessSchemaBuilder,
    root_input: NodeId,
    role: RoleSpec,
    assignment: RoleAssignment,
    description: String,
    priority: Priority,
}

/// Builder for [`AwarenessSchema`].
pub struct AwarenessSchemaBuilder {
    id: AwarenessSchemaId,
    name: String,
    process: ProcessSchemaId,
    spec: SpecBuilder,
}

impl AwarenessSchemaBuilder {
    /// Starts an awareness schema named `name` on process schema `process`.
    pub fn new(id: AwarenessSchemaId, name: &str, process: ProcessSchemaId) -> Self {
        AwarenessSchemaBuilder {
            id,
            name: name.to_owned(),
            process,
            spec: SpecBuilder::new(),
        }
    }

    /// `Filter_context[P, context, field](E_context)`.
    pub fn context_filter(&mut self, context: &str, field: &str) -> Result<NodeId, SpecError> {
        let leaf = self.spec.producer(Producer::Context);
        self.spec.operator(
            Arc::new(ContextFilter::new(self.process, context, field)),
            &[leaf],
        )
    }

    /// `Filter_activity[P, var, *, new_states](E_activity)`.
    pub fn activity_filter(
        &mut self,
        var: ActivityVarId,
        new_states: &[&str],
    ) -> Result<NodeId, SpecError> {
        let leaf = self.spec.producer(Producer::Activity);
        self.spec.operator(
            Arc::new(ActivityFilter::entering(self.process, var, new_states)),
            &[leaf],
        )
    }

    /// `Filter_activity` over instances of `P` itself entering `new_states`.
    pub fn process_filter(&mut self, new_states: &[&str]) -> Result<NodeId, SpecError> {
        let leaf = self.spec.producer(Producer::Activity);
        self.spec.operator(
            Arc::new(ActivityFilter::process_entering(self.process, new_states)),
            &[leaf],
        )
    }

    /// An application-specific external filter.
    pub fn external_filter(&mut self, filter: ExternalFilter) -> Result<NodeId, SpecError> {
        let leaf = self.spec.producer(Producer::External(filter.source.clone()));
        self.spec.operator(Arc::new(filter), &[leaf])
    }

    /// `And[P, copy]` over the given inputs.
    pub fn and(&mut self, copy: usize, inputs: &[NodeId]) -> Result<NodeId, SpecError> {
        self.spec.operator(
            Arc::new(AndOp::new(self.process, inputs.len().max(2), copy.min(inputs.len().max(2)).max(1))),
            inputs,
        )
    }

    /// `Seq[P, copy]` over the given inputs.
    pub fn seq(&mut self, copy: usize, inputs: &[NodeId]) -> Result<NodeId, SpecError> {
        self.spec.operator(
            Arc::new(SeqOp::new(self.process, inputs.len().max(2), copy.min(inputs.len().max(2)).max(1))),
            inputs,
        )
    }

    /// `Or[P]` over the given inputs.
    pub fn or(&mut self, inputs: &[NodeId]) -> Result<NodeId, SpecError> {
        self.spec
            .operator(Arc::new(OrOp::new(self.process, inputs.len().max(2))), inputs)
    }

    /// `Count[P]`.
    pub fn count(&mut self, input: NodeId) -> Result<NodeId, SpecError> {
        self.spec
            .operator(Arc::new(CountOp::new(self.process)), &[input])
    }

    /// `Compare1[P, intInfo <op> constant]`.
    pub fn compare1(
        &mut self,
        op: CmpOp,
        constant: i64,
        input: NodeId,
    ) -> Result<NodeId, SpecError> {
        self.spec.operator(
            Arc::new(Compare1Op::new(self.process, op, constant)),
            &[input],
        )
    }

    /// `Compare2[P, op](a, b)`.
    pub fn compare2(&mut self, op: CmpOp, a: NodeId, b: NodeId) -> Result<NodeId, SpecError> {
        self.spec
            .operator(Arc::new(Compare2Op::new(self.process, op)), &[a, b])
    }

    /// `Translate[P, invoked, var]` re-addressing `invoked_events` (a
    /// canonical stream of the invoked schema) to this builder's process.
    pub fn translate(
        &mut self,
        invoked: ProcessSchemaId,
        var: ActivityVarId,
        invoked_events: NodeId,
    ) -> Result<NodeId, SpecError> {
        let act = self.spec.producer(Producer::Activity);
        self.spec.operator(
            Arc::new(TranslateOp::new(self.process, invoked, var)),
            &[act, invoked_events],
        )
    }

    /// Raw access for operators not covered by a convenience method.
    pub fn raw(&mut self) -> &mut SpecBuilder {
        &mut self.spec
    }

    /// Attaches the delivery role, moving to the finishing stage. `root` is
    /// the awareness description's result node; the output operator is added
    /// on top of it.
    pub fn deliver_to(self, root: NodeId, role: RoleSpec) -> AwarenessSchemaFinisher {
        AwarenessSchemaFinisher {
            inner: self,
            root_input: root,
            role,
            assignment: RoleAssignment::Identity,
            description: String::new(),
            priority: Priority::Normal,
        }
    }
}

impl AwarenessSchemaFinisher {
    /// Sets the role assignment (default: identity, as in the prototype).
    pub fn assign(mut self, assignment: RoleAssignment) -> Self {
        self.assignment = assignment;
        self
    }

    /// Sets the user-friendly event description.
    pub fn describe(mut self, description: &str) -> Self {
        self.description = description.to_owned();
        self
    }

    /// Sets the delivery priority (default `Normal`).
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Validates and builds the awareness schema.
    pub fn build(self) -> Result<AwarenessSchema, SpecError> {
        let mut inner = self.inner;
        let description = if self.description.is_empty() {
            inner.name.clone()
        } else {
            self.description
        };
        let out = inner.spec.operator(
            Arc::new(OutputOp::new(inner.process, &description)),
            &[self.root_input],
        )?;
        let spec = inner
            .spec
            .build(SpecId(inner.id.raw()), &inner.name, out)?;
        Ok(AwarenessSchema {
            id: inner.id,
            name: inner.name,
            process: inner.process,
            description: spec,
            delivery_role: self.role,
            assignment: self.assignment,
            event_description: description,
            priority: self.priority,
        })
    }
}

/// Builds the paper's §5.4 deadline-violation awareness schema over the given
/// information-request process schema:
///
/// ```text
/// AS_InfoRequest = (Compare2[InfoRequest, <=](op1, op2),
///                   InfoRequestContext.Requestor, Identity)
/// op1 = Filter_context[InfoRequest, TaskForceContext, TaskForceDeadline]
/// op2 = Filter_context[InfoRequest, InfoRequestContext, RequestDeadline]
/// ```
pub fn deadline_violation_schema(
    id: AwarenessSchemaId,
    info_request: ProcessSchemaId,
) -> AwarenessSchema {
    let mut b = AwarenessSchemaBuilder::new(id, "AS_InfoRequest", info_request);
    let op1 = b
        .context_filter("TaskForceContext", "TaskForceDeadline")
        .expect("op1");
    let op2 = b
        .context_filter("InfoRequestContext", "RequestDeadline")
        .expect("op2");
    let cmp = b.compare2(CmpOp::Le, op1, op2).expect("compare2");
    b.deliver_to(cmp, RoleSpec::scoped("InfoRequestContext", "Requestor"))
        .assign(RoleAssignment::Identity)
        .describe("task force deadline moved to or before the information request deadline")
        .build()
        .expect("statically valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: ProcessSchemaId = ProcessSchemaId(1);

    #[test]
    fn section_5_4_schema_builds() {
        let s = deadline_violation_schema(AwarenessSchemaId(1), P);
        assert_eq!(s.name, "AS_InfoRequest");
        assert_eq!(s.operator_count(), 4);
        assert_eq!(
            s.delivery_role,
            RoleSpec::scoped("InfoRequestContext", "Requestor")
        );
        assert_eq!(s.assignment, RoleAssignment::Identity);
    }

    #[test]
    fn builder_composes_count_and_compare1() {
        // "Notify when three lab tests have completed."
        let mut b = AwarenessSchemaBuilder::new(AwarenessSchemaId(2), "labs", P);
        let f = b
            .activity_filter(ActivityVarId(5), &["Completed"])
            .unwrap();
        let c = b.count(f).unwrap();
        let gate = b.compare1(CmpOp::Ge, 3, c).unwrap();
        let s = b
            .deliver_to(gate, RoleSpec::org("health-crisis-leader"))
            .describe("three lab tests completed")
            .build()
            .unwrap();
        assert_eq!(s.operator_count(), 4);
    }

    #[test]
    fn builder_or_and_seq() {
        let mut b = AwarenessSchemaBuilder::new(AwarenessSchemaId(3), "mix", P);
        let f1 = b.context_filter("C", "a").unwrap();
        let f2 = b.context_filter("C", "b").unwrap();
        let f3 = b.context_filter("C", "c").unwrap();
        let any = b.or(&[f1, f2]).unwrap();
        let then = b.seq(2, &[any, f3]).unwrap();
        let s = b
            .deliver_to(then, RoleSpec::org("observer"))
            .build()
            .unwrap();
        assert!(s.operator_count() >= 5);
        assert_eq!(s.event_description, "mix", "defaults to schema name");
    }

    #[test]
    fn type_errors_propagate_from_spec_layer() {
        let mut b = AwarenessSchemaBuilder::new(AwarenessSchemaId(4), "bad", P);
        let f = b.context_filter("C", "a").unwrap();
        // copy index out of range panics in AndOp::new; arity error instead:
        let err = b.and(1, &[f]).unwrap_err();
        assert!(matches!(err, SpecError::BadArity { .. }));
    }

    #[test]
    fn process_filter_watches_own_lifecycle() {
        let mut b = AwarenessSchemaBuilder::new(AwarenessSchemaId(5), "lifecycle", P);
        let f = b.process_filter(&["Completed", "Terminated"]).unwrap();
        let s = b
            .deliver_to(f, RoleSpec::org("manager"))
            .build()
            .unwrap();
        assert_eq!(s.operator_count(), 2);
    }
}
