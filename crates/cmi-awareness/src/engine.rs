//! The awareness engine: detector agents plus the delivery agent (§6.3–6.5).
//!
//! Awareness schemata are compiled into a detector (the merged multiply-
//! rooted DAG of `cmi-events`). When a detector root fires, the **delivery
//! agent** resolves the schema's awareness delivery role and role assignment
//! — *at detection time*, against the live directory and context state — to a
//! set of participants, and queues the event's information for each of them
//! in the persistent delivery queue.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use cmi_core::context::ContextManager;
use cmi_core::ids::{AwarenessSchemaId, ProcessInstanceId, UserId};
use cmi_core::instance::InstanceStore;
use cmi_core::participant::Directory;
use cmi_core::roles::RoleSpec;
use cmi_events::event::{params, Event};
use cmi_events::producers;
use cmi_events::sharded::ShardedEngine;
use cmi_obs::{Counter, ObsRegistry};

use crate::queue::{DeliveryQueue, Notification};
use crate::schema::AwarenessSchema;

/// Predicate over an emission's routing instance (`None` = instance-less).
/// Installed by a federation layer so a node only *detects* for the process
/// instances it owns; events still flow through every node's detector (they
/// may advance multi-instance operators), but emissions for foreign
/// instances are suppressed — the owning node produces those.
pub type PartitionFilter = Arc<dyn Fn(Option<u64>) -> bool + Send + Sync>;

/// Delivery counters for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryStats {
    /// Composite events detected.
    pub detections: u64,
    /// Notifications enqueued (detections × recipients).
    pub notifications: u64,
    /// Detections whose delivery role could not be resolved (e.g. scope
    /// already ended) — delivered to no one.
    pub unresolved_roles: u64,
}

/// Metric series names the delivery agent publishes; [`DeliveryStats`] is a
/// view over these registry counters, so the same numbers show up in the
/// Prometheus exposition and the wire telemetry.
mod series {
    pub const DETECTIONS: &str = "cmi_delivery_detections";
    pub const NOTIFICATIONS: &str = "cmi_delivery_notifications";
    pub const UNRESOLVED_ROLES: &str = "cmi_delivery_unresolved_roles";
}

/// The delivery agent's registry counter handles. The fan-out runs
/// concurrently on every detector shard, so recording stays a lock-free
/// relaxed add; reading goes through the registry snapshot (one coherent
/// pass instead of loading each atomic separately).
#[derive(Debug)]
struct DeliveryCounters {
    detections: Counter,
    notifications: Counter,
    unresolved_roles: Counter,
}

impl DeliveryCounters {
    fn new(obs: &ObsRegistry) -> Self {
        DeliveryCounters {
            detections: obs.counter(series::DETECTIONS),
            notifications: obs.counter(series::NOTIFICATIONS),
            unresolved_roles: obs.counter(series::UNRESOLVED_ROLES),
        }
    }
}

/// The awareness engine.
pub struct AwarenessEngine {
    detector: RwLock<ShardedEngine>,
    schemas: RwLock<BTreeMap<AwarenessSchemaId, AwarenessSchema>>,
    queue: Arc<DeliveryQueue>,
    directory: Arc<Directory>,
    contexts: Arc<ContextManager>,
    obs: Arc<ObsRegistry>,
    counters: DeliveryCounters,
    partition: RwLock<Option<PartitionFilter>>,
}

impl fmt::Debug for AwarenessEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AwarenessEngine")
            .field("schemas", &self.schemas.read().len())
            .field("shards", &self.detector.read().shard_count())
            .field("stats", &self.stats())
            .finish()
    }
}

impl AwarenessEngine {
    /// An engine delivering through `queue`, resolving roles against
    /// `directory` and `contexts`. The detector is unsharded (one replica);
    /// use [`AwarenessEngine::with_shards`] to scale the ingest hot path.
    pub fn new(
        directory: Arc<Directory>,
        contexts: Arc<ContextManager>,
        queue: Arc<DeliveryQueue>,
    ) -> Self {
        Self::with_shards(directory, contexts, queue, 1)
    }

    /// An engine whose detector is sharded over `shards` replicas keyed by
    /// process instance (see [`cmi_events::sharded`]). One shard is exactly
    /// the unsharded engine; more shards let concurrent producers ingest in
    /// parallel with identical detection results.
    pub fn with_shards(
        directory: Arc<Directory>,
        contexts: Arc<ContextManager>,
        queue: Arc<DeliveryQueue>,
        shards: usize,
    ) -> Self {
        Self::with_obs(
            directory,
            contexts,
            queue,
            shards,
            Arc::new(ObsRegistry::new()),
        )
    }

    /// Like [`AwarenessEngine::with_shards`], publishing into a caller-
    /// provided observability registry instead of a private one: the
    /// detector shards count ingests and operator firings into it, each
    /// detection records its causal trace (bound to the notification
    /// sequence numbers it produces), and the delivery queue publishes its
    /// depth. Pass [`ObsRegistry::noop`] to switch telemetry off wholesale.
    pub fn with_obs(
        directory: Arc<Directory>,
        contexts: Arc<ContextManager>,
        queue: Arc<DeliveryQueue>,
        shards: usize,
        obs: Arc<ObsRegistry>,
    ) -> Self {
        let mut detector = ShardedEngine::new(shards);
        detector.set_obs(Arc::clone(&obs));
        queue.attach_obs(&obs);
        let counters = DeliveryCounters::new(&obs);
        AwarenessEngine {
            detector: RwLock::new(detector),
            schemas: RwLock::new(BTreeMap::new()),
            queue,
            directory,
            contexts,
            obs,
            counters,
            partition: RwLock::new(None),
        }
    }

    /// Installs (or clears, with `None`) a standing partition filter: every
    /// subsequent [`ingest`](Self::ingest) suppresses detections whose
    /// routing instance the predicate rejects. Used by federation so each
    /// node only detects for its owned partition.
    pub fn set_partition_filter(&self, filter: Option<PartitionFilter>) {
        *self.partition.write() = filter;
    }

    /// The conservative set of raw process-instance ids `event` may touch,
    /// per the registered schemas' routing hints (see
    /// [`cmi_events::sharded::ShardedEngine::routing_instances`]). Empty
    /// means the event is instance-less / globally related.
    pub fn routing_instances(&self, event: &Event) -> std::collections::BTreeSet<u64> {
        self.detector.read().routing_instances(event)
    }

    /// The observability registry this engine publishes into.
    pub fn obs(&self) -> &Arc<ObsRegistry> {
        &self.obs
    }

    /// Number of detector replicas.
    pub fn shard_count(&self) -> usize {
        self.detector.read().shard_count()
    }

    /// Registers an awareness schema: compiles its description into the
    /// detector (sharing sub-DAGs with previously registered schemas).
    pub fn register(&self, schema: AwarenessSchema) {
        self.detector.write().add_spec(&schema.description);
        self.schemas.write().insert(schema.id, schema);
    }

    /// Number of registered awareness schemas.
    pub fn schema_count(&self) -> usize {
        self.schemas.read().len()
    }

    /// The delivery queue.
    pub fn queue(&self) -> &Arc<DeliveryQueue> {
        &self.queue
    }

    /// Delivery counters — a view over the observability registry, read in
    /// one coherent snapshot pass. All zeros when the engine was given a
    /// no-op registry.
    pub fn stats(&self) -> DeliveryStats {
        let snap = self.obs.snapshot();
        DeliveryStats {
            detections: snap.counter(series::DETECTIONS).unwrap_or(0),
            notifications: snap.counter(series::NOTIFICATIONS).unwrap_or(0),
            unresolved_roles: snap.counter(series::UNRESOLVED_ROLES).unwrap_or(0),
        }
    }

    /// Detector topology (node/sharing counts), for experiments.
    pub fn topology(&self) -> cmi_events::engine::EngineTopology {
        self.detector.read().topology()
    }

    /// Renders the merged detector DAG (Fig. 6 content, engine-wide).
    pub fn describe_detector(&self) -> String {
        self.detector.read().shard(0).describe()
    }

    /// Pushes one primitive event through detection and delivery. Returns
    /// the notifications that were enqueued (one per recipient per
    /// detection). Thread-safe: concurrent calls for events of different
    /// process instances proceed on different detector shards, and the
    /// delivery fan-out below uses only lock-free counters and the
    /// queue's own synchronization.
    pub fn ingest(&self, event: &Event) -> Vec<Notification> {
        let detections = {
            let detector = self.detector.read();
            match &*self.partition.read() {
                Some(keep) => detector.ingest_kept(event, &**keep),
                None => detector.ingest(event),
            }
        };
        self.deliver(detections)
    }

    /// Pushes a batch of primitive events through detection and delivery in
    /// order, concatenating the enqueued notifications. Within one call the
    /// events are sequential (preserving per-instance order); parallelism
    /// comes from concurrent callers whose batches hit different shards.
    pub fn ingest_batch(&self, events: &[Event]) -> Vec<Notification> {
        let mut delivered = Vec::new();
        for e in events {
            delivered.extend(self.ingest(e));
        }
        delivered
    }

    /// Drops detector state for a closed process instance — routed to the
    /// owning shard only. Returns the number of state partitions dropped.
    pub fn evict_instance(&self, instance: ProcessInstanceId) -> usize {
        self.detector.read().evict_instance(instance.raw())
    }

    /// The delivery agent: resolves each detection's delivery role and role
    /// assignment at detection time and enqueues one notification per
    /// recipient.
    fn deliver(&self, detections: Vec<cmi_events::engine::Detection>) -> Vec<Notification> {
        let mut delivered = Vec::new();
        if detections.is_empty() {
            return delivered;
        }
        let schemas = self.schemas.read();
        for d in detections {
            self.counters.detections.inc();
            let Some(schema) = schemas.get(&AwarenessSchemaId(d.spec.raw())) else {
                continue;
            };
            let instance = d
                .event
                .process_instance()
                .unwrap_or(ProcessInstanceId(0));
            let Some(candidates) = self.resolve_delivery_role(&schema.delivery_role, instance)
            else {
                self.counters.unresolved_roles.inc();
                continue;
            };
            let recipients = schema.assignment.apply(&candidates, &self.directory);
            for user in recipients {
                let mut n = self.make_notification(schema, user, &d.event, instance);
                if let Ok(seq) = self.queue.enqueue(n.clone()) {
                    n.seq = seq;
                    self.counters.notifications.inc();
                    // Link the queued notification back to the detection's
                    // causal trace: retrieval by seq is what the wire
                    // telemetry exposes, and the "queue" stage stamps how
                    // long detection → enqueue took.
                    if let Some(tid) = d.trace {
                        let tracer = self.obs.tracer();
                        tracer.bind_seq(seq, tid);
                        tracer.stage(tid, "queue");
                    }
                    let _ = self.directory.adjust_load(user, 1);
                    delivered.push(n);
                }
            }
        }
        delivered
    }

    /// Resolves the delivery role at detection time. `None` when the role
    /// cannot be resolved (unknown org role, no live context, ended scope).
    fn resolve_delivery_role(
        &self,
        role: &RoleSpec,
        instance: ProcessInstanceId,
    ) -> Option<Vec<UserId>> {
        match role {
            RoleSpec::Org(name) => {
                let r = self.directory.role_by_name(name)?;
                self.directory.resolve(r).ok()
            }
            RoleSpec::Scoped { context_name, role } => {
                // Prefer a context attached to the event's process instance;
                // fall back to any live context of that name (events related
                // globally, instance 0).
                let ctx = self
                    .contexts
                    .find(context_name, instance)
                    .or_else(|| self.contexts.find_by_name(context_name))?;
                self.contexts.resolve_role(ctx, role).ok()
            }
        }
    }

    fn make_notification(
        &self,
        schema: &AwarenessSchema,
        user: UserId,
        event: &Event,
        instance: ProcessInstanceId,
    ) -> Notification {
        Notification {
            seq: 0,
            user,
            time: event.time,
            schema: schema.id,
            schema_name: schema.name.clone(),
            description: event
                .get_str(cmi_events::operators::DESCRIPTION_PARAM)
                .unwrap_or(&schema.event_description)
                .to_owned(),
            process_schema: schema.process,
            process_instance: instance,
            int_info: event.int_info(),
            str_info: event.get_str(params::STR_INFO).map(str::to_owned),
            priority: schema.priority,
        }
    }
}

/// Wires the awareness engine's **event source agents** (§6.3) to the CORE
/// and coordination stores: every activity state change and context field
/// change is converted to its primitive event and ingested synchronously.
pub fn attach_event_sources(
    engine: &Arc<AwarenessEngine>,
    store: &InstanceStore,
    contexts: &ContextManager,
) {
    let e1 = engine.clone();
    store.subscribe(Arc::new(move |change| {
        e1.ingest(&producers::activity_event(change));
    }));
    let e2 = engine.clone();
    contexts.subscribe(Arc::new(move |change| {
        e2.ingest(&producers::context_event(change));
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assignment::RoleAssignment;
    use crate::builder::{deadline_violation_schema, AwarenessSchemaBuilder};
    use cmi_core::ids::ProcessSchemaId;
    use cmi_core::time::{SimClock, Timestamp};
    use cmi_core::value::Value;

    const P: ProcessSchemaId = ProcessSchemaId(1);

    struct Fixture {
        engine: Arc<AwarenessEngine>,
        directory: Arc<Directory>,
        contexts: Arc<ContextManager>,
        clock: SimClock,
    }

    fn fixture() -> Fixture {
        let clock = SimClock::new();
        let directory = Arc::new(Directory::new());
        let contexts = Arc::new(ContextManager::new(Arc::new(clock.clone())));
        let queue = Arc::new(DeliveryQueue::in_memory());
        let engine = Arc::new(AwarenessEngine::new(
            directory.clone(),
            contexts.clone(),
            queue,
        ));
        Fixture {
            engine,
            directory,
            contexts,
            clock,
        }
    }

    /// Drives the full §5.4 scenario through real context resources.
    #[test]
    fn deadline_violation_delivered_to_scoped_requestor() {
        let f = fixture();
        let requestor = f.directory.add_user("requestor");
        let other = f.directory.add_user("other-member");
        f.engine
            .register(deadline_violation_schema(AwarenessSchemaId(1), P));
        attach_event_sources(&f.engine,
            // no instance store needed for this context-only scenario; make
            // a throwaway one
            &InstanceStore::new(
                Arc::new(f.clock.clone()),
                Arc::new(cmi_core::repository::SchemaRepository::new()),
            ),
            &f.contexts,
        );

        let pi = ProcessInstanceId(10);
        // Task force context with a deadline at day 5.
        let tf = f.contexts.create("TaskForceContext", Some((P, pi)));
        f.contexts
            .set_field(
                tf,
                "TaskForceDeadline",
                Value::Time(Timestamp::from_millis(5_000)),
            )
            .unwrap();
        // Information request context: requestor role + deadline at day 3.
        let ir = f.contexts.create("InfoRequestContext", Some((P, pi)));
        f.contexts.create_role(ir, "Requestor", &[requestor]).unwrap();
        let _ = other;
        f.contexts
            .set_field(
                ir,
                "RequestDeadline",
                Value::Time(Timestamp::from_millis(3_000)),
            )
            .unwrap();
        assert_eq!(f.engine.queue().pending_for(requestor), 0, "5000 <= 3000 false");

        // The leader moves the task force deadline to 2_000 < 3_000.
        f.contexts
            .set_field(
                tf,
                "TaskForceDeadline",
                Value::Time(Timestamp::from_millis(2_000)),
            )
            .unwrap();
        assert_eq!(f.engine.queue().pending_for(requestor), 1);
        let n = &f.engine.queue().fetch(requestor, 10)[0];
        assert!(n.description.contains("deadline"));
        assert_eq!(n.process_instance, pi);
        assert_eq!(n.int_info, Some(2_000));
        let s = f.engine.stats();
        assert_eq!(s.detections, 1);
        assert_eq!(s.notifications, 1);
    }

    #[test]
    fn delivery_role_resolved_at_detection_time_not_registration() {
        let f = fixture();
        let u1 = f.directory.add_user("u1");
        let u2 = f.directory.add_user("u2");
        let mut b = AwarenessSchemaBuilder::new(AwarenessSchemaId(1), "AS", P);
        let filt = b.context_filter("C", "f").unwrap();
        f.engine.register(
            b.deliver_to(filt, RoleSpec::scoped("C", "R"))
                .build()
                .unwrap(),
        );
        let pi = ProcessInstanceId(4);
        let ctx = f.contexts.create("C", Some((P, pi)));
        f.contexts.create_role(ctx, "R", &[u1]).unwrap();

        let ev = |v: i64| {
            producers::context_event(&cmi_core::context::ContextFieldChange {
                time: Timestamp::EPOCH,
                context_id: ctx,
                context_name: "C".into(),
                processes: vec![(P, pi)],
                field_name: "f".into(),
                old_value: None,
                new_value: Value::Int(v),
            })
        };
        f.engine.ingest(&ev(1));
        assert_eq!(f.engine.queue().pending_for(u1), 1);
        assert_eq!(f.engine.queue().pending_for(u2), 0);
        // Membership changes between detections are honored.
        f.contexts.remove_role_member(ctx, "R", u1).unwrap();
        f.contexts.add_role_member(ctx, "R", u2).unwrap();
        f.engine.ingest(&ev(2));
        assert_eq!(f.engine.queue().pending_for(u1), 1, "unchanged");
        assert_eq!(f.engine.queue().pending_for(u2), 1);
    }

    #[test]
    fn ended_scope_means_no_delivery() {
        let f = fixture();
        let u = f.directory.add_user("u");
        let mut b = AwarenessSchemaBuilder::new(AwarenessSchemaId(1), "AS", P);
        let filt = b.context_filter("C", "f").unwrap();
        f.engine.register(
            b.deliver_to(filt, RoleSpec::scoped("Gone", "R"))
                .build()
                .unwrap(),
        );
        let pi = ProcessInstanceId(4);
        let gone = f.contexts.create("Gone", Some((P, pi)));
        f.contexts.create_role(gone, "R", &[u]).unwrap();
        f.contexts.destroy(gone).unwrap();
        let c = f.contexts.create("C", Some((P, pi)));
        f.contexts.set_field(c, "f", Value::Int(1)).unwrap();
        f.engine.ingest(&producers::context_event(
            &cmi_core::context::ContextFieldChange {
                time: Timestamp::EPOCH,
                context_id: c,
                context_name: "C".into(),
                processes: vec![(P, pi)],
                field_name: "f".into(),
                old_value: None,
                new_value: Value::Int(2),
            },
        ));
        assert_eq!(f.engine.queue().pending_for(u), 0);
        assert_eq!(f.engine.stats().unresolved_roles, 1);
    }

    #[test]
    fn org_role_delivery_and_assignment() {
        let f = fixture();
        let u1 = f.directory.add_user("u1");
        let u2 = f.directory.add_user("u2");
        let leaders = f.directory.add_role("leaders").unwrap();
        f.directory.assign(u1, leaders).unwrap();
        f.directory.assign(u2, leaders).unwrap();
        f.directory.set_signed_on(u2, true).unwrap();

        let mut b = AwarenessSchemaBuilder::new(AwarenessSchemaId(1), "AS", P);
        let filt = b.context_filter("C", "f").unwrap();
        f.engine.register(
            b.deliver_to(filt, RoleSpec::org("leaders"))
                .assign(RoleAssignment::SignedOn)
                .build()
                .unwrap(),
        );
        let pi = ProcessInstanceId(1);
        let c = f.contexts.create("C", Some((P, pi)));
        attach_event_sources(
            &f.engine,
            &InstanceStore::new(
                Arc::new(f.clock.clone()),
                Arc::new(cmi_core::repository::SchemaRepository::new()),
            ),
            &f.contexts,
        );
        f.contexts.set_field(c, "f", Value::Int(1)).unwrap();
        assert_eq!(f.engine.queue().pending_for(u2), 1, "signed-on only");
        assert_eq!(f.engine.queue().pending_for(u1), 0);
        // Delivery bumps recipient load.
        assert_eq!(f.directory.participant(u2).unwrap().load, 1);
    }

    #[test]
    fn notifications_carry_str_info() {
        let f = fixture();
        let u = f.directory.add_user("u");
        let r = f.directory.add_role("watchers").unwrap();
        f.directory.assign(u, r).unwrap();
        let mut b = AwarenessSchemaBuilder::new(AwarenessSchemaId(1), "AS", P);
        let filt = b.context_filter("C", "status").unwrap();
        f.engine.register(
            b.deliver_to(filt, RoleSpec::org("watchers"))
                .describe("status changed")
                .build()
                .unwrap(),
        );
        let pi = ProcessInstanceId(1);
        let c = f.contexts.create("C", Some((P, pi)));
        attach_event_sources(
            &f.engine,
            &InstanceStore::new(
                Arc::new(f.clock.clone()),
                Arc::new(cmi_core::repository::SchemaRepository::new()),
            ),
            &f.contexts,
        );
        f.contexts
            .set_field(c, "status", Value::from("positive"))
            .unwrap();
        let n = &f.engine.queue().fetch(u, 1)[0];
        assert_eq!(n.str_info.as_deref(), Some("positive"));
        assert_eq!(n.description, "status changed");
    }
}
