//! Textual rendering of awareness schemas — the Fig. 6 view.
//!
//! The CMI awareness specification tool draws operators as boxes, primitive
//! event sources as diamonds, and event connections as lines. This renderer
//! produces the same content as a tree rooted at the output operator, with
//! slot numbers on the edges and diamonds (`◇`) marking producer leaves.
//! Nodes consumed by more than one operator are rendered at each consumer
//! and tagged `(shared)`.

use cmi_events::spec::{NodeId, SpecNode};

use crate::schema::AwarenessSchema;

/// Renders the complete awareness schema: the description DAG plus the
/// delivery role and role assignment carried by the output operator.
pub fn render_schema(schema: &AwarenessSchema) -> String {
    let mut out = format!(
        "awareness schema `{}` on process {}\n",
        schema.name, schema.process
    );
    out.push_str(&format!(
        "  deliver to : {}   assign: {}   priority: {}\n",
        schema.delivery_role, schema.assignment, schema.priority
    ));
    out.push_str(&format!("  describes  : {}\n", schema.event_description));
    out.push_str("  awareness description (DAG):\n");
    let nodes = schema.description.nodes();
    // Count consumers to tag shared nodes.
    let mut consumer_count = vec![0usize; nodes.len()];
    for n in nodes {
        if let SpecNode::Operator { inputs, .. } = n {
            for i in inputs {
                consumer_count[i.index()] += 1;
            }
        }
    }
    render_node(
        &mut out,
        nodes,
        &consumer_count,
        schema.description.root(),
        "    ",
        None,
        true,
    );
    out
}

fn render_node(
    out: &mut String,
    nodes: &[SpecNode],
    consumers: &[usize],
    node: NodeId,
    prefix: &str,
    slot: Option<usize>,
    last: bool,
) {
    let n = &nodes[node.index()];
    let connector = if slot.is_none() {
        String::new()
    } else if last {
        "└─".to_owned()
    } else {
        "├─".to_owned()
    };
    let slot_label = slot.map_or(String::new(), |s| format!("[{}] ", s + 1));
    let shape = match n {
        SpecNode::Producer(_) => format!("◇ {}", n.label()),
        SpecNode::Operator { .. } => format!("[ {} ]", n.label()),
    };
    let shared = if consumers[node.index()] > 1 {
        "  (shared)"
    } else {
        ""
    };
    out.push_str(&format!("{prefix}{connector}{slot_label}{shape}{shared}\n"));
    if let SpecNode::Operator { inputs, .. } = n {
        let child_prefix = if slot.is_none() {
            format!("{prefix}  ")
        } else if last {
            format!("{prefix}    ")
        } else {
            format!("{prefix}│   ")
        };
        for (i, input) in inputs.iter().enumerate() {
            render_node(
                out,
                nodes,
                consumers,
                *input,
                &child_prefix,
                Some(i),
                i + 1 == inputs.len(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::deadline_violation_schema;
    use cmi_core::ids::{AwarenessSchemaId, ProcessSchemaId};

    #[test]
    fn renders_the_figure_6_schema() {
        let s = deadline_violation_schema(AwarenessSchemaId(1), ProcessSchemaId(3));
        let out = render_schema(&s);
        // Structure of Fig. 6: output atop Compare2 atop two context filters
        // sharing the context event diamond.
        assert!(out.contains("deliver to : InfoRequestContext.Requestor"));
        assert!(out.contains("assign: identity"));
        assert!(out.contains("priority: normal"));
        assert!(out.contains("[ Output[as3] ]"));
        assert!(out.contains("[ Compare2[as3, <=] ]"));
        assert!(out.contains("TaskForceContext, TaskForceDeadline"));
        assert!(out.contains("InfoRequestContext, RequestDeadline"));
        assert!(out.contains("◇ Context Event  (shared)"));
        // Slot labels on the compare edges.
        assert!(out.contains("├─[1]"));
        assert!(out.contains("└─[2]"));
    }

    #[test]
    fn render_is_deterministic() {
        let s = deadline_violation_schema(AwarenessSchemaId(1), ProcessSchemaId(3));
        assert_eq!(render_schema(&s), render_schema(&s));
    }
}
