//! # cmi-awareness — the CMI Awareness Model (AM)
//!
//! The paper's primary contribution: customized process and situation
//! awareness (§5–6). An awareness schema `AS_P = (AD_P, R_P, RA_P)` couples a
//! composite event specification with delivery instructions:
//!
//! * [`schema`] — the `(AD, R, RA)` triplet.
//! * [`builder`] — programmatic construction (the specification tool's API).
//! * [`dsl`] — the textual awareness specification language.
//! * [`assignment`] — role assignment functions (identity, signed-on,
//!   least-loaded, first-N).
//! * [`engine`] — the awareness engine: detector compilation with shared
//!   sub-DAGs, detection-time role resolution, the delivery agent.
//! * [`queue`] — persistent per-participant delivery queues (WAL + recovery).
//! * [`viewer`] — the participant-side awareness information viewer.
//! * [`agents`] — the asynchronous agent pipeline of the Fig. 5 architecture.
//! * [`render`] — Fig. 6-style textual rendering of awareness schemas.
//! * [`system`] — [`CmiServer`]: the fully wired CMI server.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod agents;
pub mod assignment;
pub mod builder;
pub mod dsl;
pub mod engine;
pub mod queue;
pub mod render;
pub mod schema;
pub mod system;
pub mod viewer;

pub use agents::AgentPipeline;
pub use assignment::RoleAssignment;
pub use builder::{deadline_violation_schema, AwarenessSchemaBuilder};
pub use dsl::{parse as parse_awareness_source, DslError};
pub use engine::{attach_event_sources, AwarenessEngine, DeliveryStats};
pub use queue::{DeliveryQueue, Notification, Priority};
pub use render::render_schema;
pub use schema::AwarenessSchema;
pub use system::CmiServer;
pub use viewer::{AwarenessViewer, DigestEntry};
