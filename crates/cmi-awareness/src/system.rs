//! The CMI server assembly — the run-time architecture of Fig. 5.
//!
//! A [`CmiServer`] wires together the CORE engine (schema repository,
//! instance store, context store, directory), the Coordination engine
//! (enactment + worklist), and the Awareness engine (detector + delivery
//! agents + persistent queue), with event source agents connecting them.
//! Clients are the worklist (participants), the awareness viewer
//! (participants), and the specification APIs/DSL (designers).

use std::path::Path;
use std::sync::Arc;

use cmi_core::context::ContextManager;
use cmi_core::instance::InstanceStore;
use cmi_core::participant::Directory;
use cmi_core::repository::SchemaRepository;
use cmi_core::time::{SimClock, Timestamp};
use cmi_core::value::Value;
use cmi_coord::engine::{EnactmentEngine, EngineConfig};
use cmi_coord::worklist::Worklist;
use cmi_events::producers::external_event;
use cmi_obs::ObsRegistry;

use crate::dsl;
use crate::engine::{attach_event_sources, AwarenessEngine};
use crate::queue::DeliveryQueue;
use crate::schema::AwarenessSchema;
use crate::viewer::AwarenessViewer;

/// The external event source name carrying dependency status changes.
pub const DEPENDENCY_STATUS_SOURCE: &str = "dependency-status";

/// A fully wired CMI server.
pub struct CmiServer {
    clock: SimClock,
    repository: Arc<SchemaRepository>,
    directory: Arc<Directory>,
    contexts: Arc<ContextManager>,
    store: Arc<InstanceStore>,
    coordination: Arc<EnactmentEngine>,
    awareness: Arc<AwarenessEngine>,
    next_awareness_id: parking_lot::Mutex<u64>,
}

impl CmiServer {
    /// Boots a server with an in-memory delivery queue and an unsharded
    /// awareness detector.
    pub fn new() -> Self {
        Self::with_queue_and_shards(Arc::new(DeliveryQueue::in_memory()), 1)
    }

    /// Boots a server whose awareness detector is sharded over `shards`
    /// replicas keyed by process instance (see [`cmi_events::sharded`]):
    /// concurrent event producers ingest in parallel with detection results
    /// identical to the unsharded server.
    pub fn with_shards(shards: usize) -> Self {
        Self::with_queue_and_shards(Arc::new(DeliveryQueue::in_memory()), shards)
    }

    /// Boots a server whose delivery queue is durable at `path`.
    pub fn with_durable_queue(path: &Path) -> std::io::Result<Self> {
        Ok(Self::with_queue_and_shards(
            Arc::new(DeliveryQueue::open(path)?),
            1,
        ))
    }

    fn with_queue_and_shards(queue: Arc<DeliveryQueue>, shards: usize) -> Self {
        let obs = Arc::new(ObsRegistry::new());
        let clock = SimClock::new();
        let clock_arc: Arc<dyn cmi_core::time::Clock> = Arc::new(clock.clone());
        let repository = Arc::new(SchemaRepository::new());
        let directory = Arc::new(Directory::new());
        let contexts = Arc::new(ContextManager::new(clock_arc.clone()));
        let store = Arc::new(InstanceStore::new(clock_arc.clone(), repository.clone()));
        let coordination = Arc::new(EnactmentEngine::new(
            store.clone(),
            contexts.clone(),
            directory.clone(),
            clock_arc,
            EngineConfig::default(),
        ));
        let awareness = Arc::new(AwarenessEngine::with_obs(
            directory.clone(),
            contexts.clone(),
            queue,
            shards,
            obs,
        ));
        attach_event_sources(&awareness, &store, &contexts);
        // Dependency status changes (§5's third awareness event class) are
        // published to the awareness engine as external events on the
        // `dependency-status` source, related to their process instance.
        {
            let aw = awareness.clone();
            let clk = clock.clone();
            coordination.subscribe_dependencies(Arc::new(move |dep| {
                let t = cmi_core::time::Clock::now(&clk);
                aw.ingest(&external_event(
                    DEPENDENCY_STATUS_SOURCE,
                    t,
                    vec![
                        (
                            "processSchemaId".to_owned(),
                            Value::Id(dep.process_schema.raw()),
                        ),
                        (
                            "processInstanceId".to_owned(),
                            Value::Id(dep.process_instance.raw()),
                        ),
                        (
                            "dependencyType".to_owned(),
                            Value::from(dep.dependency_type),
                        ),
                        ("targetVar".to_owned(), Value::Id(dep.target.raw())),
                        ("targetName".to_owned(), Value::from(dep.target_name.as_str())),
                    ],
                ));
            }));
        }
        // Reactive guard routing: a context-field change re-evaluates the
        // dependencies of every process instance the context is attached to,
        // so `Guard` dependencies enable activities the moment their
        // condition becomes true (no manual `route` call needed). A weak
        // reference avoids the Arc cycle contexts → listener → coordination.
        {
            let coord = std::sync::Arc::downgrade(&coordination);
            contexts.subscribe(Arc::new(move |change| {
                if let Some(coord) = coord.upgrade() {
                    for &(_, pi) in &change.processes {
                        let _ = coord.route(pi);
                    }
                }
            }));
        }
        CmiServer {
            clock,
            repository,
            directory,
            contexts,
            store,
            coordination,
            awareness,
            next_awareness_id: parking_lot::Mutex::new(1),
        }
    }

    /// The scenario clock (advance it to simulate the passage of time).
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }
    /// The schema repository (designer API).
    pub fn repository(&self) -> &Arc<SchemaRepository> {
        &self.repository
    }
    /// The participant directory.
    pub fn directory(&self) -> &Arc<Directory> {
        &self.directory
    }
    /// The context store.
    pub fn contexts(&self) -> &Arc<ContextManager> {
        &self.contexts
    }
    /// The instance store.
    pub fn store(&self) -> &Arc<InstanceStore> {
        &self.store
    }
    /// The coordination engine.
    pub fn coordination(&self) -> &Arc<EnactmentEngine> {
        &self.coordination
    }
    /// The awareness engine.
    pub fn awareness(&self) -> &Arc<AwarenessEngine> {
        &self.awareness
    }
    /// The server-wide observability registry every subsystem publishes
    /// into: metrics (ingest, operator firings, delivery, queue depth),
    /// causal detection traces, and the flight recorder.
    pub fn obs(&self) -> &Arc<ObsRegistry> {
        self.awareness.obs()
    }

    /// A worklist client.
    pub fn worklist(&self) -> Worklist {
        Worklist::new(self.coordination.clone())
    }

    /// A process-monitor client.
    pub fn monitor(&self) -> cmi_coord::monitor::ProcessMonitor {
        cmi_coord::monitor::ProcessMonitor::new(self.store.clone(), self.contexts.clone())
    }

    /// An awareness viewer client for `user` (signs them on).
    pub fn viewer(&self, user: cmi_core::ids::UserId) -> cmi_core::error::CoreResult<AwarenessViewer> {
        AwarenessViewer::sign_on(
            self.awareness.queue().clone(),
            self.directory.clone(),
            user,
        )
    }

    /// Registers an awareness schema built through the builder API.
    pub fn register_awareness(&self, schema: AwarenessSchema) {
        self.awareness.register(schema);
    }

    /// Allocates a fresh awareness schema id.
    pub fn fresh_awareness_id(&self) -> cmi_core::ids::AwarenessSchemaId {
        let mut g = self.next_awareness_id.lock();
        let id = cmi_core::ids::AwarenessSchemaId(*g);
        *g += 1;
        id
    }

    /// Parses awareness specification source (the designer DSL) and
    /// registers every schema it declares. Returns how many were registered.
    pub fn load_awareness_source(&self, src: &str) -> Result<usize, dsl::DslError> {
        let mut next = self.next_awareness_id.lock();
        let schemas = dsl::parse(src, &self.repository, &mut next)?;
        drop(next);
        let n = schemas.len();
        for s in schemas {
            self.awareness.register(s);
        }
        Ok(n)
    }

    /// Injects an application-specific external event (e.g. the news
    /// service of §5.1.1) into awareness processing.
    pub fn external_event(
        &self,
        source: &str,
        fields: impl IntoIterator<Item = (String, Value)>,
    ) -> usize {
        let t: Timestamp = cmi_core::time::Clock::now(&self.clock);
        self.awareness
            .ingest(&external_event(source, t, fields))
            .len()
    }

    /// Renders the component wiring of Fig. 5 with live statistics.
    pub fn architecture_diagram(&self) -> String {
        let topo = self.awareness.topology();
        let stats = self.awareness.stats();
        format!(
            "CMI Enactment System\n\
             ├─ CORE Engine\n\
             │    schema repository : {} activity schemas\n\
             │    instance store    : {} instances\n\
             │    context store     : {} contexts ({} live)\n\
             │    directory         : {} participants, {} org roles\n\
             ├─ Coordination Engine (WfMS substrate)\n\
             │    scripts           : {} basic activity scripts\n\
             ├─ Service Engine      : (attach cmi-service::ServiceEngine; violations feed awareness)\n\
             └─ Awareness Engine (CEDMOS)\n\
                  event source agents: activity + context (wired)\n\
                  detector agent     : {} nodes ({} shared), {} awareness schemas\n\
                  delivery agent     : {} detections, {} notifications\n\
                  persistent queue   : {} pending\n\
             Clients\n\
             ├─ Participants: worklist, monitor (instance snapshots), awareness viewer\n\
             └─ Designers  : process schemas (builder), awareness specs (builder + DSL)\n",
            self.repository.activity_schema_count(),
            self.store.instance_count(),
            self.contexts.context_count(),
            self.contexts.live_contexts().len(),
            self.directory.participant_count(),
            self.directory.role_count(),
            self.coordination.script_count(),
            topo.nodes,
            topo.shared_nodes,
            self.awareness.schema_count(),
            stats.detections,
            stats.notifications,
            self.awareness.queue().pending_total(),
        )
    }
}

impl Default for CmiServer {
    fn default() -> Self {
        CmiServer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmi_core::schema::ActivitySchemaBuilder;
    use cmi_core::state_schema::{generic, ActivityStateSchema};
    use cmi_coord::scripts::{ActivityScript, MemberSource, ScriptAction, ScriptValue};
    use cmi_core::time::Duration;

    /// End-to-end: process enactment drives awareness delivery through the
    /// full server, §5.4 style.
    #[test]
    fn full_stack_deadline_violation() {
        let server = CmiServer::new();
        let repo = server.repository();
        let leader = server.directory().add_user("crisis-leader");
        let member = server.directory().add_user("member");

        // Schemas: InfoRequest subprocess inside TaskForce process.
        let ss = repo
            .register_state_schema(ActivityStateSchema::generic(repo.fresh_state_schema_id()));
        let gather = repo.fresh_activity_schema_id();
        repo.register_activity_schema(
            ActivitySchemaBuilder::basic(gather, "Gather", ss.clone())
                .build()
                .unwrap(),
        );
        let info_req = repo.fresh_activity_schema_id();
        let mut ib = ActivitySchemaBuilder::process(info_req, "InfoRequest", ss.clone());
        ib.activity_var("gather", gather, false).unwrap();
        repo.register_activity_schema(ib.build().unwrap());
        let task_force = repo.fresh_activity_schema_id();
        let mut tb = ActivitySchemaBuilder::process(task_force, "TaskForce", ss);
        tb.activity_var("request", info_req, true).unwrap();
        repo.register_activity_schema(tb.build().unwrap());

        // Scripts: task force creates its context; the info request creates
        // its own with the Requestor scoped role.
        server.coordination().register_script(
            task_force,
            generic::RUNNING,
            ActivityScript::new(
                "tf-init",
                vec![
                    ScriptAction::CreateContext {
                        name: "TaskForceContext".into(),
                    },
                    ScriptAction::SetField {
                        context: "TaskForceContext".into(),
                        field: "TaskForceDeadline".into(),
                        value: ScriptValue::NowPlus(Duration::from_days(5)),
                    },
                ],
            ),
        );
        server.coordination().register_script(
            info_req,
            generic::RUNNING,
            ActivityScript::new(
                "ir-init",
                vec![
                    ScriptAction::CreateContext {
                        name: "InfoRequestContext".into(),
                    },
                    ScriptAction::CreateRole {
                        context: "InfoRequestContext".into(),
                        role: "Requestor".into(),
                        members: MemberSource::TriggeringUser,
                    },
                    ScriptAction::SetField {
                        context: "InfoRequestContext".into(),
                        field: "RequestDeadline".into(),
                        value: ScriptValue::NowPlus(Duration::from_days(3)),
                    },
                ],
            ),
        );

        // Awareness spec via DSL. Note: the spec is on InfoRequest; both
        // contexts must be visible to it, so the TaskForceContext is
        // attached to the request instance below (the paper: "this context
        // would be passed to the information request subprocess").
        let n = server
            .load_awareness_source(
                r#"
                awareness "AS_InfoRequest" on "InfoRequest" {
                    op1  = context_filter(TaskForceContext, TaskForceDeadline)
                    op2  = context_filter(InfoRequestContext, RequestDeadline)
                    viol = compare2(<=, op1, op2)
                    deliver viol to scoped(InfoRequestContext, Requestor)
                    describe "task force deadline moved before the request deadline"
                }
                "#,
            )
            .unwrap();
        assert_eq!(n, 1);

        // Enact: leader starts the task force; member makes an info request.
        let tf = server.coordination().start_process(task_force, Some(leader)).unwrap();
        let req = server
            .coordination()
            .start_optional(tf, "request", Some(member))
            .unwrap();
        // Pass the task force context to the subprocess (schema-level
        // context visibility), then stamp the deadline *after* attachment so
        // the filter (relative to InfoRequest) sees it.
        let tf_ctx = server.contexts().find("TaskForceContext", tf).unwrap();
        server.contexts().attach(tf_ctx, (info_req, req)).unwrap();
        server
            .contexts()
            .set_field(
                tf_ctx,
                "TaskForceDeadline",
                Value::Time(cmi_core::time::Clock::now(server.clock()).plus(Duration::from_days(5))),
            )
            .unwrap();

        let viewer = server.viewer(member).unwrap();
        assert_eq!(viewer.unread(), 0, "no violation yet: 5d > 3d");

        // The leader moves the task force deadline to 2 days.
        server
            .contexts()
            .set_field(
                tf_ctx,
                "TaskForceDeadline",
                Value::Time(cmi_core::time::Clock::now(server.clock()).plus(Duration::from_days(2))),
            )
            .unwrap();
        assert_eq!(viewer.unread(), 1);
        let batch = viewer.take(10);
        assert!(batch[0].description.contains("deadline"));
        assert_eq!(batch[0].user, member);
        // The leader (not the requestor) receives nothing.
        assert_eq!(server.awareness().queue().pending_for(leader), 0);

        // Architecture diagram reflects the live system.
        let diagram = server.architecture_diagram();
        assert!(diagram.contains("Awareness Engine"));
        assert!(diagram.contains("1 awareness schemas"));
    }

    #[test]
    fn external_events_flow_through_server() {
        let server = CmiServer::new();
        let repo = server.repository();
        let ss = repo
            .register_state_schema(ActivityStateSchema::generic(repo.fresh_state_schema_id()));
        let pid = repo.fresh_activity_schema_id();
        let pb = ActivitySchemaBuilder::process(pid, "Watch", ss);
        repo.register_activity_schema(pb.build().unwrap());
        let u = server.directory().add_user("analyst");
        let r = server.directory().add_role("analysts").unwrap();
        server.directory().assign(u, r).unwrap();
        server
            .load_awareness_source(
                r#"
                awareness "news" on Watch {
                    hit = external(news-service, queryId)
                    deliver hit to org(analysts)
                }
                "#,
            )
            .unwrap();
        let delivered = server.external_event(
            "news-service",
            vec![("queryId".to_owned(), Value::Id(3))],
        );
        assert_eq!(delivered, 1);
        assert_eq!(server.awareness().queue().pending_for(u), 1);
    }
}
