//! Awareness role assignment functions `RA_P` (§5.3).
//!
//! The role assignment is "an arbitrary function on the set of users gathered
//! by resolving the awareness role that returns a subset of those users. The
//! function may choose users that should receive awareness information based
//! on their load or whether they are currently signed-on to the system."
//!
//! The paper's prototype implemented only the identity function; this crate
//! implements the identity plus the two selection policies the paper names
//! (signed-on, load-based) and a first-N policy useful for on-call rotations.

use cmi_core::ids::UserId;
use cmi_core::participant::Directory;

/// The role assignment function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RoleAssignment {
    /// Deliver to every user in the delivery role (the paper's implemented
    /// default).
    Identity,
    /// Deliver only to users currently signed on; if nobody is signed on,
    /// fall back to everyone (nobody may miss a crisis notification).
    SignedOn,
    /// Deliver to the `n` least-loaded users.
    LeastLoaded {
        /// How many recipients to select.
        n: usize,
    },
    /// Deliver to the first `n` users in role order.
    FirstN {
        /// How many recipients to select.
        n: usize,
    },
}

impl RoleAssignment {
    /// Applies the assignment to the users resolved from the delivery role.
    /// The input order (user-id order, from role resolution) is preserved.
    pub fn apply(&self, users: &[UserId], directory: &Directory) -> Vec<UserId> {
        match self {
            RoleAssignment::Identity => users.to_vec(),
            RoleAssignment::SignedOn => {
                let on: Vec<UserId> = users
                    .iter()
                    .copied()
                    .filter(|u| {
                        directory
                            .participant(*u)
                            .map(|p| p.signed_on)
                            .unwrap_or(false)
                    })
                    .collect();
                if on.is_empty() {
                    users.to_vec()
                } else {
                    on
                }
            }
            RoleAssignment::LeastLoaded { n } => {
                let mut with_load: Vec<(u32, UserId)> = users
                    .iter()
                    .copied()
                    .map(|u| {
                        (
                            directory.participant(u).map(|p| p.load).unwrap_or(u32::MAX),
                            u,
                        )
                    })
                    .collect();
                with_load.sort(); // by load, ties by user id
                let mut out: Vec<UserId> =
                    with_load.into_iter().take(*n).map(|(_, u)| u).collect();
                out.sort();
                out
            }
            RoleAssignment::FirstN { n } => users.iter().copied().take(*n).collect(),
        }
    }

    /// Parses the DSL form: `identity`, `signed-on`, `least-loaded(n)`,
    /// `first(n)`.
    pub fn parse(s: &str) -> Option<RoleAssignment> {
        let s = s.trim();
        if s == "identity" {
            return Some(RoleAssignment::Identity);
        }
        if s == "signed-on" {
            return Some(RoleAssignment::SignedOn);
        }
        let inner = |prefix: &str| -> Option<usize> {
            s.strip_prefix(prefix)?
                .strip_prefix('(')?
                .strip_suffix(')')?
                .trim()
                .parse()
                .ok()
        };
        if let Some(n) = inner("least-loaded") {
            return Some(RoleAssignment::LeastLoaded { n });
        }
        if let Some(n) = inner("first") {
            return Some(RoleAssignment::FirstN { n });
        }
        None
    }
}

impl std::fmt::Display for RoleAssignment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RoleAssignment::Identity => write!(f, "identity"),
            RoleAssignment::SignedOn => write!(f, "signed-on"),
            RoleAssignment::LeastLoaded { n } => write!(f, "least-loaded({n})"),
            RoleAssignment::FirstN { n } => write!(f, "first({n})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir_with_users(n: usize) -> (Directory, Vec<UserId>) {
        let d = Directory::new();
        let users = (0..n).map(|i| d.add_user(&format!("u{i}"))).collect();
        (d, users)
    }

    #[test]
    fn identity_delivers_to_all() {
        let (d, users) = dir_with_users(3);
        assert_eq!(RoleAssignment::Identity.apply(&users, &d), users);
    }

    #[test]
    fn signed_on_filters_with_fallback() {
        let (d, users) = dir_with_users(3);
        d.set_signed_on(users[1], true).unwrap();
        assert_eq!(
            RoleAssignment::SignedOn.apply(&users, &d),
            vec![users[1]]
        );
        d.set_signed_on(users[1], false).unwrap();
        // Nobody signed on: deliver to everyone rather than no one.
        assert_eq!(RoleAssignment::SignedOn.apply(&users, &d), users);
    }

    #[test]
    fn least_loaded_picks_lowest_load() {
        let (d, users) = dir_with_users(3);
        d.set_load(users[0], 9).unwrap();
        d.set_load(users[1], 1).unwrap();
        d.set_load(users[2], 5).unwrap();
        assert_eq!(
            RoleAssignment::LeastLoaded { n: 2 }.apply(&users, &d),
            vec![users[1], users[2]]
        );
    }

    #[test]
    fn least_loaded_breaks_ties_by_user_id() {
        let (d, users) = dir_with_users(3);
        assert_eq!(
            RoleAssignment::LeastLoaded { n: 1 }.apply(&users, &d),
            vec![users[0]]
        );
    }

    #[test]
    fn first_n_truncates() {
        let (d, users) = dir_with_users(4);
        assert_eq!(
            RoleAssignment::FirstN { n: 2 }.apply(&users, &d),
            &users[..2]
        );
        assert_eq!(
            RoleAssignment::FirstN { n: 9 }.apply(&users, &d),
            users
        );
    }

    #[test]
    fn parse_roundtrip() {
        for ra in [
            RoleAssignment::Identity,
            RoleAssignment::SignedOn,
            RoleAssignment::LeastLoaded { n: 3 },
            RoleAssignment::FirstN { n: 1 },
        ] {
            assert_eq!(RoleAssignment::parse(&ra.to_string()), Some(ra));
        }
        assert_eq!(RoleAssignment::parse("bogus"), None);
        assert_eq!(RoleAssignment::parse("first(x)"), None);
    }
}
