//! Activity and process instances, and the activity state change event
//! producer (§4, §5.1.1).
//!
//! Schemas are instantiated during application execution (Fig. 3). The
//! [`InstanceStore`] owns every instance, enforces the instance's activity
//! state schema on each transition, and emits an [`ActivityStateChange`] —
//! the payload of the primitive producer `E_activity` — for every transition,
//! with exactly the parameters the paper lists.
//!
//! CORE deliberately does *not* decide when transitions happen ("an activity
//! state schema … does **not** define how and when a state transition
//! occurs"); the Coordination Model (`cmi-coord`) provides the operations
//! that cause them by calling [`InstanceStore::transition`].

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{CoreError, CoreResult};
use crate::ids::{
    ActivityInstanceId, ActivitySchemaId, ActivityVarId, ContextId, IdGen, ProcessInstanceId,
    ProcessSchemaId, UserId,
};
use crate::repository::SchemaRepository;
use crate::schema::{ActivityKind, ActivitySchema};
use crate::state_schema::{generic, StateRef};
use crate::time::{Clock, Timestamp};

/// An activity state change event — the payload of the primitive producer
/// `E_activity` with type `T_activity` (§5.1.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivityStateChange {
    /// The time of the event.
    pub time: Timestamp,
    /// The activity instance changing state.
    pub activity_instance_id: ActivityInstanceId,
    /// The process schema id of the activity's parent process, if the
    /// activity is not itself a top-level process.
    pub parent_process_schema_id: Option<ProcessSchemaId>,
    /// The process instance id of the activity's parent process, if any.
    pub parent_process_instance_id: Option<ProcessInstanceId>,
    /// The user responsible for the state change, if any.
    pub user: Option<UserId>,
    /// The activity variable id of the activity changing state, if the
    /// activity is not itself a top-level process.
    pub activity_var_id: Option<ActivityVarId>,
    /// The process schema id of the activity, if the activity is a process.
    pub activity_process_schema_id: Option<ProcessSchemaId>,
    /// The old state (leaf name).
    pub old_state: String,
    /// The new state (leaf name).
    pub new_state: String,
}

impl fmt::Display for ActivityStateChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}: {} -> {}",
            self.time, self.activity_instance_id, self.old_state, self.new_state
        )
    }
}

/// Callback invoked synchronously on every activity state change. Event
/// source agents (§6.3) register one to feed the awareness engine.
pub type StateChangeListener = Arc<dyn Fn(&ActivityStateChange) + Send + Sync>;

#[derive(Debug, Clone)]
struct InstanceState {
    id: ActivityInstanceId,
    schema: Arc<ActivitySchema>,
    /// The slot this instance fills in its parent, if it is a subactivity.
    var: Option<ActivityVarId>,
    parent: Option<(ProcessSchemaId, ProcessInstanceId)>,
    state: StateRef,
    performer: Option<UserId>,
    created: Timestamp,
    closed_at: Option<Timestamp>,
    children: Vec<ActivityInstanceId>,
    contexts: Vec<ContextId>,
}

/// An immutable snapshot of one instance, for inspection and display.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceSnapshot {
    /// The instance id.
    pub id: ActivityInstanceId,
    /// Its schema.
    pub schema_id: ActivitySchemaId,
    /// Schema name.
    pub schema_name: String,
    /// Basic or process.
    pub kind: ActivityKind,
    /// The variable slot in the parent, if any.
    pub var: Option<ActivityVarId>,
    /// Parent process, if any.
    pub parent: Option<(ProcessSchemaId, ProcessInstanceId)>,
    /// Current state (leaf name).
    pub state: String,
    /// Who performs/performed it, if assigned.
    pub performer: Option<UserId>,
    /// Creation time.
    pub created: Timestamp,
    /// Time the instance entered a final state, if it has.
    pub closed_at: Option<Timestamp>,
    /// Child instances (for processes).
    pub children: Vec<ActivityInstanceId>,
    /// Contexts attached to the instance.
    pub contexts: Vec<ContextId>,
}

/// Owns all activity/process instances; the CORE engine's instance store.
pub struct InstanceStore {
    clock: Arc<dyn Clock>,
    repo: Arc<SchemaRepository>,
    instances: RwLock<BTreeMap<ActivityInstanceId, InstanceState>>,
    listeners: RwLock<Vec<StateChangeListener>>,
    ids: IdGen,
}

impl fmt::Debug for InstanceStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InstanceStore")
            .field("instances", &self.instances.read().len())
            .finish()
    }
}

impl InstanceStore {
    /// A store reading time from `clock` and schemas from `repo`.
    pub fn new(clock: Arc<dyn Clock>, repo: Arc<SchemaRepository>) -> Self {
        InstanceStore {
            clock,
            repo,
            instances: RwLock::new(BTreeMap::new()),
            listeners: RwLock::new(Vec::new()),
            ids: IdGen::new(),
        }
    }

    /// The schema repository this store instantiates from.
    pub fn repository(&self) -> &Arc<SchemaRepository> {
        &self.repo
    }

    /// The clock this store stamps events with.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Registers a listener for all subsequent activity state changes.
    pub fn subscribe(&self, l: StateChangeListener) {
        self.listeners.write().push(l);
    }

    fn emit(&self, ev: ActivityStateChange) {
        let listeners = self.listeners.read();
        for l in listeners.iter() {
            l(&ev);
        }
    }

    /// Creates a top-level process instance of `schema`. The instance starts
    /// in its state schema's initial state.
    pub fn create_top_level(&self, schema: ProcessSchemaId) -> CoreResult<ProcessInstanceId> {
        self.create(schema, None)
    }

    /// Creates a subactivity instance filling variable `var` of parent
    /// process instance `parent`.
    pub fn create_subactivity(
        &self,
        parent: ProcessInstanceId,
        var: ActivityVarId,
    ) -> CoreResult<ActivityInstanceId> {
        let (parent_schema, child_schema) = {
            let g = self.instances.read();
            let p = g
                .get(&parent)
                .ok_or(CoreError::UnknownActivityInstance(parent))?;
            let av = p.schema.activity_var_by_id(var)?;
            (p.schema.id(), av.schema)
        };
        let id = self.create_inner(child_schema, Some((var, parent_schema, parent)))?;
        self.instances
            .write()
            .get_mut(&parent)
            .expect("parent checked above")
            .children
            .push(id);
        Ok(id)
    }

    fn create(
        &self,
        schema: ActivitySchemaId,
        slot: Option<(ActivityVarId, ProcessSchemaId, ProcessInstanceId)>,
    ) -> CoreResult<ActivityInstanceId> {
        self.create_inner(schema, slot)
    }

    fn create_inner(
        &self,
        schema_id: ActivitySchemaId,
        slot: Option<(ActivityVarId, ProcessSchemaId, ProcessInstanceId)>,
    ) -> CoreResult<ActivityInstanceId> {
        let schema = self.repo.activity_schema(schema_id)?;
        let id: ActivityInstanceId = self.ids.next();
        let st = InstanceState {
            id,
            state: schema.state_schema().initial(),
            schema,
            var: slot.map(|(v, _, _)| v),
            parent: slot.map(|(_, ps, pi)| (ps, pi)),
            performer: None,
            created: self.clock.now(),
            closed_at: None,
            children: Vec::new(),
            contexts: Vec::new(),
        };
        self.instances.write().insert(id, st);
        Ok(id)
    }

    /// Applies the state transition `-> to_state` on the instance, attributed
    /// to `user`. `to_state` may name a leaf or a refined superstate (which
    /// resolves to its entry leaf). Validates the transition against the
    /// instance's activity state schema and emits the activity state change
    /// event.
    pub fn transition(
        &self,
        id: ActivityInstanceId,
        to_state: &str,
        user: Option<UserId>,
    ) -> CoreResult<ActivityStateChange> {
        let ev = {
            let mut g = self.instances.write();
            let inst = g.get_mut(&id).ok_or(CoreError::UnknownActivityInstance(id))?;
            let ss = inst.schema.state_schema();
            // Resolve through refined superstates: requesting `Running` on a
            // schema where Running has substates lands on the entry leaf.
            let to = ss.resolve_leaf(to_state)?;
            let from = inst.state;
            ss.transition(from, to)?;
            inst.state = to;
            if ss.is_final(to) {
                inst.closed_at = Some(self.clock.now());
            }
            ActivityStateChange {
                time: self.clock.now(),
                activity_instance_id: id,
                parent_process_schema_id: inst.parent.map(|(ps, _)| ps),
                parent_process_instance_id: inst.parent.map(|(_, pi)| pi),
                user,
                activity_var_id: inst.var,
                activity_process_schema_id: inst
                    .schema
                    .is_process()
                    .then(|| inst.schema.id()),
                old_state: ss.state_name(from).to_owned(),
                new_state: ss.state_name(to).to_owned(),
            }
        };
        self.emit(ev.clone());
        Ok(ev)
    }

    /// Current state (leaf name) of the instance.
    pub fn state_of(&self, id: ActivityInstanceId) -> CoreResult<String> {
        let g = self.instances.read();
        let inst = g.get(&id).ok_or(CoreError::UnknownActivityInstance(id))?;
        Ok(inst
            .schema
            .state_schema()
            .state_name(inst.state)
            .to_owned())
    }

    /// True if the instance's current leaf is `ancestor` or within it (e.g.
    /// "is it Closed?" while the leaf is `Completed`).
    pub fn is_within(&self, id: ActivityInstanceId, ancestor: &str) -> CoreResult<bool> {
        let g = self.instances.read();
        let inst = g.get(&id).ok_or(CoreError::UnknownActivityInstance(id))?;
        inst.schema
            .state_schema()
            .is_within_named(inst.state, ancestor)
    }

    /// True once the instance is in a final state.
    pub fn is_closed(&self, id: ActivityInstanceId) -> CoreResult<bool> {
        self.is_within(id, generic::CLOSED).or_else(|_| {
            // Application state schemas may rename Closed; fall back to "leaf
            // is final".
            let g = self.instances.read();
            let inst = g.get(&id).ok_or(CoreError::UnknownActivityInstance(id))?;
            Ok(inst.schema.state_schema().is_final(inst.state))
        })
    }

    /// Assigns the performing participant.
    pub fn set_performer(&self, id: ActivityInstanceId, user: UserId) -> CoreResult<()> {
        let mut g = self.instances.write();
        let inst = g.get_mut(&id).ok_or(CoreError::UnknownActivityInstance(id))?;
        inst.performer = Some(user);
        Ok(())
    }

    /// Attaches a context to the instance (resource scoping).
    pub fn attach_context(&self, id: ActivityInstanceId, ctx: ContextId) -> CoreResult<()> {
        let mut g = self.instances.write();
        let inst = g.get_mut(&id).ok_or(CoreError::UnknownActivityInstance(id))?;
        inst.contexts.push(ctx);
        Ok(())
    }

    /// The schema of the instance.
    pub fn schema_of(&self, id: ActivityInstanceId) -> CoreResult<Arc<ActivitySchema>> {
        let g = self.instances.read();
        g.get(&id)
            .map(|i| i.schema.clone())
            .ok_or(CoreError::UnknownActivityInstance(id))
    }

    /// Child instance filling variable `var` of process instance `id` that
    /// was created most recently, if any.
    pub fn child_for_var(
        &self,
        id: ProcessInstanceId,
        var: ActivityVarId,
    ) -> CoreResult<Option<ActivityInstanceId>> {
        let g = self.instances.read();
        let inst = g.get(&id).ok_or(CoreError::UnknownActivityInstance(id))?;
        Ok(inst
            .children
            .iter()
            .rev()
            .find(|c| g.get(c).is_some_and(|ci| ci.var == Some(var)))
            .copied())
    }

    /// A full snapshot of the instance.
    pub fn snapshot(&self, id: ActivityInstanceId) -> CoreResult<InstanceSnapshot> {
        let g = self.instances.read();
        let inst = g.get(&id).ok_or(CoreError::UnknownActivityInstance(id))?;
        Ok(InstanceSnapshot {
            id: inst.id,
            schema_id: inst.schema.id(),
            schema_name: inst.schema.name().to_owned(),
            kind: inst.schema.kind(),
            var: inst.var,
            parent: inst.parent,
            state: inst
                .schema
                .state_schema()
                .state_name(inst.state)
                .to_owned(),
            performer: inst.performer,
            created: inst.created,
            closed_at: inst.closed_at,
            children: inst.children.clone(),
            contexts: inst.contexts.clone(),
        })
    }

    /// Ids of every instance, in creation order.
    pub fn all_instances(&self) -> Vec<ActivityInstanceId> {
        self.instances.read().keys().copied().collect()
    }

    /// Total number of instances ever created.
    pub fn instance_count(&self) -> usize {
        self.instances.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    
    use crate::schema::ActivitySchemaBuilder;
    use crate::state_schema::{generic::*, ActivityStateSchema};
    use crate::time::{Duration, SimClock};
    use parking_lot::Mutex;

    fn setup() -> (Arc<SchemaRepository>, InstanceStore, SimClock) {
        let clock = SimClock::new();
        let repo = Arc::new(SchemaRepository::new());
        let store = InstanceStore::new(Arc::new(clock.clone()), repo.clone());
        (repo, store, clock)
    }

    fn register_basic(repo: &SchemaRepository, name: &str) -> ActivitySchemaId {
        let ss = repo.register_state_schema(ActivityStateSchema::generic(repo.fresh_state_schema_id()));
        let id = repo.fresh_activity_schema_id();
        let s = ActivitySchemaBuilder::basic(id, name, ss).build().unwrap();
        repo.register_activity_schema(s);
        id
    }

    fn register_process(repo: &SchemaRepository, name: &str, subs: &[ActivitySchemaId]) -> ActivitySchemaId {
        let ss = repo.register_state_schema(ActivityStateSchema::generic(repo.fresh_state_schema_id()));
        let id = repo.fresh_activity_schema_id();
        let mut b = ActivitySchemaBuilder::process(id, name, ss);
        for (i, s) in subs.iter().enumerate() {
            b.activity_var(&format!("step{i}"), *s, false).unwrap();
        }
        repo.register_activity_schema(b.build().unwrap());
        id
    }

    #[test]
    fn lifecycle_emits_events_with_paper_parameters() {
        let (repo, store, clock) = setup();
        let basic = register_basic(&repo, "LabTest");
        let proc = register_process(&repo, "TaskForce", &[basic]);

        let seen: Arc<Mutex<Vec<ActivityStateChange>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        store.subscribe(Arc::new(move |ev| sink.lock().push(ev.clone())));

        let pi = store.create_top_level(proc).unwrap();
        let var = repo.activity_schema(proc).unwrap().activity_vars()[0].id;
        let ai = store.create_subactivity(pi, var).unwrap();

        clock.advance(Duration::from_mins(1));
        let user = UserId(42);
        store.transition(pi, READY, None).unwrap();
        store.transition(ai, READY, None).unwrap();
        store.transition(ai, RUNNING, Some(user)).unwrap();

        let evs = seen.lock();
        assert_eq!(evs.len(), 3);
        // Top-level process event: no parent, has activityProcessSchemaId.
        assert_eq!(evs[0].parent_process_schema_id, None);
        assert_eq!(evs[0].activity_var_id, None);
        assert_eq!(evs[0].activity_process_schema_id, Some(proc));
        // Subactivity event: parent set, var set, not a process itself.
        assert_eq!(evs[1].parent_process_schema_id, Some(proc));
        assert_eq!(evs[1].parent_process_instance_id, Some(pi));
        assert_eq!(evs[1].activity_var_id, Some(var));
        assert_eq!(evs[1].activity_process_schema_id, None);
        // User attribution and states.
        assert_eq!(evs[2].user, Some(user));
        assert_eq!(evs[2].old_state, READY);
        assert_eq!(evs[2].new_state, RUNNING);
        assert_eq!(evs[2].time, Timestamp::from_millis(60_000));
    }

    #[test]
    fn illegal_transitions_rejected_and_state_unchanged() {
        let (repo, store, _) = setup();
        let basic = register_basic(&repo, "A");
        let proc = register_process(&repo, "P", &[basic]);
        let pi = store.create_top_level(proc).unwrap();
        assert_eq!(store.state_of(pi).unwrap(), UNINITIALIZED);
        assert!(store.transition(pi, RUNNING, None).is_err());
        assert_eq!(store.state_of(pi).unwrap(), UNINITIALIZED);
        // Non-leaf target.
        assert!(store.transition(pi, CLOSED, None).is_err());
    }

    #[test]
    fn closed_detection_through_superstate() {
        let (repo, store, clock) = setup();
        let basic = register_basic(&repo, "A");
        let proc = register_process(&repo, "P", &[basic]);
        let pi = store.create_top_level(proc).unwrap();
        store.transition(pi, READY, None).unwrap();
        store.transition(pi, RUNNING, None).unwrap();
        clock.advance(Duration::from_mins(30));
        store.transition(pi, COMPLETED, None).unwrap();
        assert!(store.is_within(pi, CLOSED).unwrap());
        assert!(store.is_closed(pi).unwrap());
        let snap = store.snapshot(pi).unwrap();
        assert_eq!(snap.closed_at, Some(Timestamp::from_millis(30 * 60_000)));
        assert_eq!(snap.state, COMPLETED);
    }

    #[test]
    fn child_for_var_returns_latest() {
        let (repo, store, _) = setup();
        let basic = register_basic(&repo, "A");
        let proc = register_process(&repo, "P", &[basic]);
        let pi = store.create_top_level(proc).unwrap();
        let var = repo.activity_schema(proc).unwrap().activity_vars()[0].id;
        assert_eq!(store.child_for_var(pi, var).unwrap(), None);
        let c1 = store.create_subactivity(pi, var).unwrap();
        assert_eq!(store.child_for_var(pi, var).unwrap(), Some(c1));
        let c2 = store.create_subactivity(pi, var).unwrap();
        assert_eq!(store.child_for_var(pi, var).unwrap(), Some(c2));
        assert_eq!(store.snapshot(pi).unwrap().children, vec![c1, c2]);
    }

    #[test]
    fn subactivity_of_unknown_var_rejected() {
        let (repo, store, _) = setup();
        let basic = register_basic(&repo, "A");
        let proc = register_process(&repo, "P", &[basic]);
        let pi = store.create_top_level(proc).unwrap();
        assert!(store.create_subactivity(pi, ActivityVarId(12345)).is_err());
    }

    #[test]
    fn performer_and_context_attachment() {
        let (repo, store, _) = setup();
        let basic = register_basic(&repo, "A");
        let proc = register_process(&repo, "P", &[basic]);
        let pi = store.create_top_level(proc).unwrap();
        store.set_performer(pi, UserId(9)).unwrap();
        store.attach_context(pi, ContextId(3)).unwrap();
        let s = store.snapshot(pi).unwrap();
        assert_eq!(s.performer, Some(UserId(9)));
        assert_eq!(s.contexts, vec![ContextId(3)]);
    }

    #[test]
    fn unknown_instance_errors() {
        let (_, store, _) = setup();
        let bogus = ActivityInstanceId(404);
        assert!(store.state_of(bogus).is_err());
        assert!(store.transition(bogus, READY, None).is_err());
        assert!(store.snapshot(bogus).is_err());
    }

    use crate::repository::SchemaRepository;
}
