//! The schema repository: registered state schemas, activity schemas and
//! resource schemas, keyed by id. One repository backs one CMI server.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{CoreError, CoreResult};
use crate::ids::{ActivitySchemaId, IdGen, ResourceSchemaId, StateSchemaId};
use crate::resource::ResourceSchema;
use crate::schema::ActivitySchema;
use crate::state_schema::ActivityStateSchema;

/// Registry of every schema known to a CMI server. Thread-safe; schemas are
/// immutable once registered (`Arc`-shared).
#[derive(Default)]
pub struct SchemaRepository {
    state_schemas: RwLock<BTreeMap<StateSchemaId, Arc<ActivityStateSchema>>>,
    activity_schemas: RwLock<BTreeMap<ActivitySchemaId, Arc<ActivitySchema>>>,
    resource_schemas: RwLock<BTreeMap<ResourceSchemaId, Arc<ResourceSchema>>>,
    ids: IdGen,
}

impl fmt::Debug for SchemaRepository {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchemaRepository")
            .field("state_schemas", &self.state_schemas.read().len())
            .field("activity_schemas", &self.activity_schemas.read().len())
            .field("resource_schemas", &self.resource_schemas.read().len())
            .finish()
    }
}

impl SchemaRepository {
    /// An empty repository.
    pub fn new() -> Self {
        SchemaRepository::default()
    }

    /// Allocates a fresh state schema id.
    pub fn fresh_state_schema_id(&self) -> StateSchemaId {
        self.ids.next()
    }
    /// Allocates a fresh activity schema id.
    pub fn fresh_activity_schema_id(&self) -> ActivitySchemaId {
        self.ids.next()
    }
    /// Allocates a fresh resource schema id.
    pub fn fresh_resource_schema_id(&self) -> ResourceSchemaId {
        self.ids.next()
    }

    /// Registers a state schema, returning the shared handle.
    pub fn register_state_schema(
        &self,
        s: Arc<ActivityStateSchema>,
    ) -> Arc<ActivityStateSchema> {
        self.state_schemas.write().insert(s.id(), s.clone());
        s
    }

    /// Registers an activity schema, returning the shared handle.
    pub fn register_activity_schema(&self, s: Arc<ActivitySchema>) -> Arc<ActivitySchema> {
        self.activity_schemas.write().insert(s.id(), s.clone());
        s
    }

    /// Registers a resource schema, returning the shared handle.
    pub fn register_resource_schema(&self, s: ResourceSchema) -> Arc<ResourceSchema> {
        let s = Arc::new(s);
        self.resource_schemas.write().insert(s.id, s.clone());
        s
    }

    /// Fetches a state schema by id.
    pub fn state_schema(&self, id: StateSchemaId) -> CoreResult<Arc<ActivityStateSchema>> {
        self.state_schemas
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| CoreError::InvalidSchema(format!("unknown state schema {id}")))
    }

    /// Fetches an activity schema by id.
    pub fn activity_schema(&self, id: ActivitySchemaId) -> CoreResult<Arc<ActivitySchema>> {
        self.activity_schemas
            .read()
            .get(&id)
            .cloned()
            .ok_or(CoreError::UnknownActivitySchema(id))
    }

    /// Fetches an activity schema by name (most recently registered wins).
    pub fn activity_schema_by_name(&self, name: &str) -> Option<Arc<ActivitySchema>> {
        self.activity_schemas
            .read()
            .values()
            .rev()
            .find(|s| s.name() == name)
            .cloned()
    }

    /// Fetches a resource schema by id.
    pub fn resource_schema(&self, id: ResourceSchemaId) -> CoreResult<Arc<ResourceSchema>> {
        self.resource_schemas
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| CoreError::InvalidSchema(format!("unknown resource schema {id}")))
    }

    /// All registered activity schemas, in id order.
    pub fn activity_schemas(&self) -> Vec<Arc<ActivitySchema>> {
        self.activity_schemas.read().values().cloned().collect()
    }

    /// Count of registered activity schemas.
    pub fn activity_schema_count(&self) -> usize {
        self.activity_schemas.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceSchema;
    use crate::schema::ActivitySchemaBuilder;
    use crate::value::ValueType;

    #[test]
    fn register_and_fetch_all_schema_kinds() {
        let repo = SchemaRepository::new();
        let ss = repo.register_state_schema(ActivityStateSchema::generic(
            repo.fresh_state_schema_id(),
        ));
        assert_eq!(repo.state_schema(ss.id()).unwrap().id(), ss.id());

        let aid = repo.fresh_activity_schema_id();
        let a = ActivitySchemaBuilder::basic(aid, "A", ss).build().unwrap();
        repo.register_activity_schema(a);
        assert_eq!(repo.activity_schema(aid).unwrap().name(), "A");
        assert!(repo.activity_schema_by_name("A").is_some());
        assert!(repo.activity_schema_by_name("Z").is_none());

        let rid = repo.fresh_resource_schema_id();
        repo.register_resource_schema(ResourceSchema::data(rid, "D", ValueType::Int));
        assert_eq!(repo.resource_schema(rid).unwrap().name, "D");
    }

    #[test]
    fn unknown_lookups_error() {
        let repo = SchemaRepository::new();
        assert!(repo.state_schema(StateSchemaId(1)).is_err());
        assert!(repo.activity_schema(ActivitySchemaId(1)).is_err());
        assert!(repo.resource_schema(ResourceSchemaId(1)).is_err());
    }

    #[test]
    fn fresh_ids_never_collide() {
        let repo = SchemaRepository::new();
        let a = repo.fresh_activity_schema_id();
        let b = repo.fresh_activity_schema_id();
        let c = repo.fresh_state_schema_id();
        assert_ne!(a.raw(), b.raw());
        assert_ne!(b.raw(), c.raw());
    }
}
