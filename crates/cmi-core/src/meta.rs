//! CMM meta-model introspection (Figs. 2 and 3).
//!
//! CMM is a process *meta model*: a CORE plus specialized extensions (the
//! Coordination, Awareness and Service models, and application-specific
//! models atop them). It provides meta types for activity states and
//! activities, a resource meta type for user-defined resource types, and a
//! **fixed** set of dependency types — the "reasonable compromise between
//! flexibility, expressiveness and complexity" of §3.
//!
//! This module encodes that structure as data so experiments (and users) can
//! introspect it; `exp_fig2_cmm` and `exp_fig3_metamodel` print it.

use std::fmt;

/// The sub-models composing CMM (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubModel {
    /// The common basis of all extensions.
    Core,
    /// Coordination Model: participant coordination, automated enactment.
    Coordination,
    /// Awareness Model: customized process and situation awareness.
    Awareness,
    /// Service Model: reusable activities, service quality and agreements.
    Service,
    /// Application-specific extensions atop CM, SM and AM.
    ApplicationSpecific,
}

/// Description of one sub-model: what it extends and the primitives it
/// contributes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubModelInfo {
    /// Which sub-model.
    pub model: SubModel,
    /// Display name.
    pub name: &'static str,
    /// The sub-models it directly builds on.
    pub extends: &'static [SubModel],
    /// The modeling primitives it contributes.
    pub primitives: &'static [&'static str],
    /// Which crate in this repository implements it.
    pub implemented_by: &'static str,
}

/// The CMM structure of Fig. 2, with each sub-model's primitives and the
/// implementing crate.
pub fn cmm_submodels() -> Vec<SubModelInfo> {
    vec![
        SubModelInfo {
            model: SubModel::Core,
            name: "CORE",
            extends: &[],
            primitives: &[
                "activity state schema (forest + leaf transitions)",
                "basic activity schema",
                "process activity schema",
                "data resource",
                "helper resource",
                "participant resource (organizational role)",
                "participant resource (scoped role)",
                "context resource",
                "dependency types (fixed set)",
            ],
            implemented_by: "cmi-core",
        },
        SubModelInfo {
            model: SubModel::Coordination,
            name: "Coordination Model (CM)",
            extends: &[SubModel::Core],
            primitives: &[
                "operations causing state transitions (start/complete/suspend/resume/terminate)",
                "dependency evaluation and routing",
                "subprocess invocation",
                "worklist",
            ],
            implemented_by: "cmi-coord",
        },
        SubModelInfo {
            model: SubModel::Awareness,
            name: "Awareness Model (AM)",
            extends: &[SubModel::Core],
            primitives: &[
                "awareness schema (AD, R, RA)",
                "awareness description (composite event specification DAG)",
                "awareness delivery role (global or scoped)",
                "awareness role assignment function",
                "canonical event type C_P",
                "event operators (filter, and, seq, or, count, compare, translate, output)",
            ],
            implemented_by: "cmi-awareness (over cmi-events)",
        },
        SubModelInfo {
            model: SubModel::Service,
            name: "Service Model (SM)",
            extends: &[SubModel::Core],
            primitives: &[
                "reusable process activities",
                "service quality",
                "service agreements",
            ],
            implemented_by: "cmi-service (registry, QoS, agreements, violation awareness)",
        },
        SubModelInfo {
            model: SubModel::ApplicationSpecific,
            name: "Application-specific extension",
            extends: &[SubModel::Coordination, SubModel::Awareness, SubModel::Service],
            primitives: &[
                "application-specific activity state substates",
                "application-specific event producers and operators",
            ],
            implemented_by: "cmi-workloads (crisis management scenarios)",
        },
    ]
}

/// The CMM meta types and type sets of Fig. 3, with their extensibility
/// class: `Meta` types can be instantiated into application-specific schemas;
/// `Fixed` sets cannot be extended (the COTS-WfMS-style compromise).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaTypeInfo {
    /// Name as in Fig. 3.
    pub name: &'static str,
    /// `true` if applications may define new types from it.
    pub extensible: bool,
    /// What schemas are created from it.
    pub instantiates: &'static str,
}

/// The meta-type table of Fig. 3.
pub fn cmm_meta_types() -> Vec<MetaTypeInfo> {
    vec![
        MetaTypeInfo {
            name: "activity state meta type",
            extensible: true,
            instantiates: "activity state schemas (application-specific substates allowed)",
        },
        MetaTypeInfo {
            name: "basic activity meta type",
            extensible: true,
            instantiates: "basic activity schemas",
        },
        MetaTypeInfo {
            name: "process activity meta type",
            extensible: true,
            instantiates: "process activity schemas",
        },
        MetaTypeInfo {
            name: "resource meta type",
            extensible: true,
            instantiates: "user-defined resource schemas (data, helper, participant, context)",
        },
        MetaTypeInfo {
            name: "dependency type",
            extensible: false,
            instantiates: "dependency variables (sequence, and-join, or-join, guard, deadline)",
        },
    ]
}

impl fmt::Display for SubModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SubModel::Core => "CORE",
            SubModel::Coordination => "CM",
            SubModel::Awareness => "AM",
            SubModel::Service => "SM",
            SubModel::ApplicationSpecific => "APP",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmm_has_core_plus_four_extensions() {
        let subs = cmm_submodels();
        assert_eq!(subs.len(), 5);
        assert_eq!(subs[0].model, SubModel::Core);
        assert!(subs[0].extends.is_empty());
        // Every non-core sub-model transitively extends CORE.
        for s in &subs[1..] {
            assert!(!s.extends.is_empty());
        }
        // The application-specific layer sits atop CM, SM and AM (Fig. 2).
        let app = subs.last().unwrap();
        assert!(app.extends.contains(&SubModel::Coordination));
        assert!(app.extends.contains(&SubModel::Awareness));
        assert!(app.extends.contains(&SubModel::Service));
    }

    #[test]
    fn only_dependency_types_are_fixed() {
        let metas = cmm_meta_types();
        let fixed: Vec<&str> = metas
            .iter()
            .filter(|m| !m.extensible)
            .map(|m| m.name)
            .collect();
        assert_eq!(fixed, vec!["dependency type"]);
        assert_eq!(metas.len(), 5);
    }

    #[test]
    fn submodel_display_abbreviations() {
        assert_eq!(SubModel::Awareness.to_string(), "AM");
        assert_eq!(SubModel::Core.to_string(), "CORE");
    }
}
