//! Simulated time.
//!
//! The paper's deployment ran open-ended processes "anywhere from 15 minutes
//! to several weeks" (§7). To reproduce such workloads in milliseconds of
//! wall-clock time, every engine in this repository reads time from a
//! [`Clock`], and experiments use a [`SimClock`] advanced explicitly by the
//! workload driver. Timestamps are logical milliseconds since the scenario
//! epoch.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point on the scenario timeline, in milliseconds since the epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The scenario epoch (t = 0).
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Builds a timestamp from raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Timestamp(ms)
    }

    /// Milliseconds since the epoch.
    pub const fn millis(self) -> u64 {
        self.0
    }

    /// This timestamp advanced by `d`.
    pub fn plus(self, d: Duration) -> Timestamp {
        Timestamp(self.0.saturating_add(d.0))
    }

    /// The duration from `earlier` to `self`; zero if `earlier` is later.
    pub fn since(self, earlier: Timestamp) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render as d:hh:mm:ss.mmm for readability in experiment output.
        let ms = self.0 % 1000;
        let total_s = self.0 / 1000;
        let s = total_s % 60;
        let m = (total_s / 60) % 60;
        let h = (total_s / 3600) % 24;
        let d = total_s / 86_400;
        write!(f, "{d}d{h:02}:{m:02}:{s:02}.{ms:03}")
    }
}

/// A span of scenario time in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Duration {
    /// Zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// From raw milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms)
    }
    /// From seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1000)
    }
    /// From minutes.
    pub const fn from_mins(m: u64) -> Self {
        Duration(m * 60_000)
    }
    /// From hours.
    pub const fn from_hours(h: u64) -> Self {
        Duration(h * 3_600_000)
    }
    /// From days.
    pub const fn from_days(d: u64) -> Self {
        Duration(d * 86_400_000)
    }

    /// Raw milliseconds.
    pub const fn millis(self) -> u64 {
        self.0
    }
}

impl std::ops::Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 86_400_000 && self.0.is_multiple_of(86_400_000) {
            write!(f, "{}d", self.0 / 86_400_000)
        } else if self.0 >= 3_600_000 && self.0.is_multiple_of(3_600_000) {
            write!(f, "{}h", self.0 / 3_600_000)
        } else if self.0 >= 60_000 && self.0.is_multiple_of(60_000) {
            write!(f, "{}m", self.0 / 60_000)
        } else if self.0 >= 1000 && self.0.is_multiple_of(1000) {
            write!(f, "{}s", self.0 / 1000)
        } else {
            write!(f, "{}ms", self.0)
        }
    }
}

/// A source of scenario time. Engines never call the OS clock; they read one
/// of these, which keeps every experiment deterministic and lets weeks-long
/// processes run instantly.
pub trait Clock: Send + Sync {
    /// The current scenario time.
    fn now(&self) -> Timestamp;
}

/// A manually-advanced simulated clock, shareable across engines and threads.
///
/// Time only moves forward: [`SimClock::advance`] and [`SimClock::set`] are
/// monotonic (setting an earlier time is a no-op), so event timestamps are
/// non-decreasing in every trace.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now_ms: Arc<AtomicU64>,
}

impl SimClock {
    /// A clock at the epoch.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// A clock starting at `t`.
    pub fn starting_at(t: Timestamp) -> Self {
        let c = SimClock::new();
        c.set(t);
        c
    }

    /// Advances the clock by `d` and returns the new time.
    pub fn advance(&self, d: Duration) -> Timestamp {
        let new = self.now_ms.fetch_add(d.millis(), Ordering::SeqCst) + d.millis();
        Timestamp::from_millis(new)
    }

    /// Moves the clock to `t` if `t` is in the future; otherwise leaves it
    /// unchanged (monotonicity).
    pub fn set(&self, t: Timestamp) {
        self.now_ms.fetch_max(t.millis(), Ordering::SeqCst);
    }
}

impl Clock for SimClock {
    fn now(&self) -> Timestamp {
        Timestamp::from_millis(self.now_ms.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_order_and_diff() {
        let a = Timestamp::from_millis(100);
        let b = a.plus(Duration::from_secs(2));
        assert!(b > a);
        assert_eq!(b.since(a), Duration::from_millis(2000));
        assert_eq!(a.since(b), Duration::ZERO);
    }

    #[test]
    fn sim_clock_advances_monotonically() {
        let c = SimClock::new();
        assert_eq!(c.now(), Timestamp::EPOCH);
        c.advance(Duration::from_mins(15));
        assert_eq!(c.now(), Timestamp::from_millis(15 * 60_000));
        // Setting the past is ignored.
        c.set(Timestamp::from_millis(3));
        assert_eq!(c.now(), Timestamp::from_millis(15 * 60_000));
        c.set(Timestamp::from_millis(10_000_000));
        assert_eq!(c.now(), Timestamp::from_millis(10_000_000));
    }

    #[test]
    fn clones_share_the_same_timeline() {
        let c = SimClock::new();
        let c2 = c.clone();
        c.advance(Duration::from_secs(1));
        assert_eq!(c2.now(), Timestamp::from_millis(1000));
    }

    #[test]
    fn duration_constructors_and_display() {
        assert_eq!(Duration::from_days(2).millis(), 172_800_000);
        assert_eq!(Duration::from_days(2).to_string(), "2d");
        assert_eq!(Duration::from_hours(3).to_string(), "3h");
        assert_eq!(Duration::from_mins(15).to_string(), "15m");
        assert_eq!(Duration::from_millis(1500).to_string(), "1500ms");
    }

    #[test]
    fn timestamp_display_format() {
        let t = Timestamp::from_millis(
            Duration::from_days(1).millis() + Duration::from_hours(2).millis() + 61_500,
        );
        assert_eq!(t.to_string(), "1d02:01:01.500");
    }
}
