//! Activity schemas: basic and process activities (§3, Fig. 3).
//!
//! A *process activity schema* consists of an activity state variable,
//! activity variables (the subactivities), resource variables, and dependency
//! variables defining the coordination rules. A *basic activity schema* is
//! restricted to a state variable and resource variables. All parts are
//! typed. CMM prescribes a **fixed set of dependency types** (like COTS
//! WfMSs) while providing meta types for activities and activity states.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use crate::error::{CoreError, CoreResult};
use crate::ids::{ActivitySchemaId, ActivityVarId, ResourceSchemaId};
use crate::resource::ResourceUsage;
use crate::roles::RoleSpec;
use crate::state_schema::ActivityStateSchema;
use crate::value::Value;

/// Whether an activity schema is a basic activity or a (sub)process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActivityKind {
    /// A leaf unit of work performed by a participant or program.
    Basic,
    /// A process: contains activity variables and dependencies.
    Process,
}

/// A typed resource variable slot in an activity schema (Fig. 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceVar {
    /// Variable name (unique within the schema).
    pub name: String,
    /// The resource type of the slot.
    pub schema: ResourceSchemaId,
    /// How the slot is used.
    pub usage: ResourceUsage,
}

/// An activity variable: the slot a subactivity occupies within a process
/// schema. Optional variables (Fig. 1's dashed activities — lab tests, local
/// expertise) need not be instantiated for the process to complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivityVar {
    /// The variable's id (unique across the repository).
    pub id: ActivityVarId,
    /// Variable name (unique within the process schema).
    pub name: String,
    /// The activity schema instances of this variable run.
    pub schema: ActivitySchemaId,
    /// If true, the process may complete without this variable ever running,
    /// and the variable is started on demand rather than by dependency flow.
    pub optional: bool,
}

/// The fixed dependency types of CMM. Dependencies coordinate the
/// subactivities of one process schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Dependency {
    /// `to` becomes `Ready` when `from` completes.
    Sequence {
        /// Predecessor variable.
        from: ActivityVarId,
        /// Successor variable.
        to: ActivityVarId,
    },
    /// `target` becomes `Ready` when *all* sources have completed.
    AndJoin {
        /// Predecessor variables.
        sources: Vec<ActivityVarId>,
        /// Successor variable.
        target: ActivityVarId,
    },
    /// `target` becomes `Ready` when *any* source completes (fires once).
    OrJoin {
        /// Predecessor variables.
        sources: Vec<ActivityVarId>,
        /// Successor variable.
        target: ActivityVarId,
    },
    /// `target` may only become `Ready` while the named field of the named
    /// context equals `expect` (evaluated when its flow dependencies fire).
    Guard {
        /// Guarded variable.
        target: ActivityVarId,
        /// Schema-level context name to consult.
        context_name: String,
        /// Field within the context.
        field: String,
        /// Required field value.
        expect: Value,
    },
    /// `target` is terminated if it is still open when the (time-valued)
    /// field of the named context passes.
    Deadline {
        /// Deadline-bound variable.
        target: ActivityVarId,
        /// Schema-level context name holding the deadline.
        context_name: String,
        /// Time-valued field within the context.
        field: String,
    },
}

impl Dependency {
    /// The variable this dependency enables/affects.
    pub fn target(&self) -> ActivityVarId {
        match self {
            Dependency::Sequence { to, .. } => *to,
            Dependency::AndJoin { target, .. }
            | Dependency::OrJoin { target, .. }
            | Dependency::Guard { target, .. }
            | Dependency::Deadline { target, .. } => *target,
        }
    }

    /// The variables that must complete before the target is enabled
    /// (empty for guards and deadlines, which are not flow edges).
    pub fn sources(&self) -> &[ActivityVarId] {
        match self {
            Dependency::Sequence { from, .. } => std::slice::from_ref(from),
            Dependency::AndJoin { sources, .. } | Dependency::OrJoin { sources, .. } => sources,
            Dependency::Guard { .. } | Dependency::Deadline { .. } => &[],
        }
    }

    /// Short name of the dependency type, for display.
    pub fn type_name(&self) -> &'static str {
        match self {
            Dependency::Sequence { .. } => "sequence",
            Dependency::AndJoin { .. } => "and-join",
            Dependency::OrJoin { .. } => "or-join",
            Dependency::Guard { .. } => "guard",
            Dependency::Deadline { .. } => "deadline",
        }
    }
}

/// A validated activity schema (basic or process).
#[derive(Debug, Clone)]
pub struct ActivitySchema {
    id: ActivitySchemaId,
    name: String,
    kind: ActivityKind,
    state_schema: Arc<ActivityStateSchema>,
    resource_vars: Vec<ResourceVar>,
    activity_vars: Vec<ActivityVar>,
    dependencies: Vec<Dependency>,
    performer: Option<RoleSpec>,
    by_var_name: BTreeMap<String, ActivityVarId>,
}

impl ActivitySchema {
    /// The schema id.
    pub fn id(&self) -> ActivitySchemaId {
        self.id
    }
    /// The schema name.
    pub fn name(&self) -> &str {
        &self.name
    }
    /// Basic or process.
    pub fn kind(&self) -> ActivityKind {
        self.kind
    }
    /// True for process schemas.
    pub fn is_process(&self) -> bool {
        self.kind == ActivityKind::Process
    }
    /// The activity state schema typing this schema's state variable.
    pub fn state_schema(&self) -> &Arc<ActivityStateSchema> {
        &self.state_schema
    }
    /// The declared resource variables.
    pub fn resource_vars(&self) -> &[ResourceVar] {
        &self.resource_vars
    }
    /// The declared activity variables (empty for basic activities).
    pub fn activity_vars(&self) -> &[ActivityVar] {
        &self.activity_vars
    }
    /// The declared dependencies (empty for basic activities).
    pub fn dependencies(&self) -> &[Dependency] {
        &self.dependencies
    }
    /// The role that performs a basic activity, if declared.
    pub fn performer(&self) -> Option<&RoleSpec> {
        self.performer.as_ref()
    }

    /// Looks up an activity variable by name.
    pub fn activity_var(&self, name: &str) -> CoreResult<&ActivityVar> {
        let id = self
            .by_var_name
            .get(name)
            .ok_or_else(|| CoreError::InvalidSchema(format!("no activity variable `{name}`")))?;
        self.activity_var_by_id(*id)
    }

    /// Looks up an activity variable by id.
    pub fn activity_var_by_id(&self, id: ActivityVarId) -> CoreResult<&ActivityVar> {
        self.activity_vars
            .iter()
            .find(|v| v.id == id)
            .ok_or(CoreError::UnknownActivityVar(id))
    }

    /// Required (non-optional) variables with no inbound flow dependency:
    /// these become `Ready` as soon as the process starts.
    pub fn initial_vars(&self) -> Vec<ActivityVarId> {
        let targeted: BTreeSet<ActivityVarId> = self
            .dependencies
            .iter()
            .filter(|d| !d.sources().is_empty())
            .map(|d| d.target())
            .collect();
        self.activity_vars
            .iter()
            .filter(|v| !v.optional && !targeted.contains(&v.id))
            .map(|v| v.id)
            .collect()
    }
}

impl fmt::Display for ActivitySchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            ActivityKind::Basic => "basic activity",
            ActivityKind::Process => "process activity",
        };
        writeln!(f, "{kind} schema `{}` ({})", self.name, self.id)?;
        writeln!(f, "  state variable : {}", self.state_schema.name())?;
        for rv in &self.resource_vars {
            writeln!(f, "  resource var   : {} ({}, {})", rv.name, rv.schema, rv.usage)?;
        }
        if let Some(p) = &self.performer {
            writeln!(f, "  performer      : {p}")?;
        }
        for av in &self.activity_vars {
            writeln!(
                f,
                "  activity var   : {} -> {}{}",
                av.name,
                av.schema,
                if av.optional { " (optional)" } else { "" }
            )?;
        }
        for d in &self.dependencies {
            let srcs: Vec<String> = d.sources().iter().map(|s| self.var_name(*s)).collect();
            writeln!(
                f,
                "  dependency     : {} [{}] -> {}",
                d.type_name(),
                srcs.join(", "),
                self.var_name(d.target())
            )?;
        }
        Ok(())
    }
}

impl ActivitySchema {
    fn var_name(&self, id: ActivityVarId) -> String {
        self.activity_vars
            .iter()
            .find(|v| v.id == id)
            .map(|v| v.name.clone())
            .unwrap_or_else(|| id.to_string())
    }
}

/// Builder for [`ActivitySchema`]. Structural rules are enforced by
/// [`ActivitySchemaBuilder::build`]:
///
/// * basic activities declare no activity variables or dependencies;
/// * variable names are unique;
/// * dependencies reference declared variables;
/// * the flow-dependency graph is acyclic.
#[derive(Debug)]
pub struct ActivitySchemaBuilder {
    id: ActivitySchemaId,
    name: String,
    kind: ActivityKind,
    state_schema: Arc<ActivityStateSchema>,
    resource_vars: Vec<ResourceVar>,
    activity_vars: Vec<ActivityVar>,
    dependencies: Vec<Dependency>,
    performer: Option<RoleSpec>,
    by_var_name: BTreeMap<String, ActivityVarId>,
    next_var: u64,
}

impl ActivitySchemaBuilder {
    /// Starts a basic activity schema.
    pub fn basic(
        id: ActivitySchemaId,
        name: &str,
        state_schema: Arc<ActivityStateSchema>,
    ) -> Self {
        Self::new(id, name, ActivityKind::Basic, state_schema)
    }

    /// Starts a process activity schema.
    pub fn process(
        id: ActivitySchemaId,
        name: &str,
        state_schema: Arc<ActivityStateSchema>,
    ) -> Self {
        Self::new(id, name, ActivityKind::Process, state_schema)
    }

    fn new(
        id: ActivitySchemaId,
        name: &str,
        kind: ActivityKind,
        state_schema: Arc<ActivityStateSchema>,
    ) -> Self {
        ActivitySchemaBuilder {
            id,
            name: name.to_owned(),
            kind,
            state_schema,
            resource_vars: Vec::new(),
            activity_vars: Vec::new(),
            dependencies: Vec::new(),
            performer: None,
            by_var_name: BTreeMap::new(),
            next_var: (id.raw() << 20) + 1,
        }
    }

    /// Declares a resource variable.
    pub fn resource_var(
        mut self,
        name: &str,
        schema: ResourceSchemaId,
        usage: ResourceUsage,
    ) -> Self {
        self.resource_vars.push(ResourceVar {
            name: name.to_owned(),
            schema,
            usage,
        });
        self
    }

    /// Sets the performing role of a basic activity.
    pub fn performed_by(mut self, role: RoleSpec) -> Self {
        self.performer = Some(role);
        self
    }

    /// Declares an activity variable; returns its id for use in dependencies.
    pub fn activity_var(
        &mut self,
        name: &str,
        schema: ActivitySchemaId,
        optional: bool,
    ) -> CoreResult<ActivityVarId> {
        if self.by_var_name.contains_key(name) {
            return Err(CoreError::DuplicateName(name.to_owned()));
        }
        let id = ActivityVarId(self.next_var);
        self.next_var += 1;
        self.activity_vars.push(ActivityVar {
            id,
            name: name.to_owned(),
            schema,
            optional,
        });
        self.by_var_name.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Adds a dependency.
    pub fn dependency(&mut self, d: Dependency) -> &mut Self {
        self.dependencies.push(d);
        self
    }

    /// Shorthand: sequence dependency.
    pub fn sequence(&mut self, from: ActivityVarId, to: ActivityVarId) -> &mut Self {
        self.dependency(Dependency::Sequence { from, to })
    }

    /// Validates and freezes the schema.
    pub fn build(self) -> CoreResult<Arc<ActivitySchema>> {
        if self.kind == ActivityKind::Basic
            && (!self.activity_vars.is_empty() || !self.dependencies.is_empty())
        {
            return Err(CoreError::InvalidSchema(
                "basic activity schemas cannot declare activity variables or dependencies".into(),
            ));
        }
        let declared: BTreeSet<ActivityVarId> = self.activity_vars.iter().map(|v| v.id).collect();
        for d in &self.dependencies {
            for v in d.sources().iter().chain(std::iter::once(&d.target())) {
                if !declared.contains(v) {
                    return Err(CoreError::UnknownActivityVar(*v));
                }
            }
            if d.sources().contains(&d.target()) {
                return Err(CoreError::InvalidSchema(format!(
                    "{} dependency targets one of its own sources",
                    d.type_name()
                )));
            }
        }
        // Cycle check over flow edges (source -> target).
        let mut edges: BTreeMap<ActivityVarId, Vec<ActivityVarId>> = BTreeMap::new();
        for d in &self.dependencies {
            for s in d.sources() {
                edges.entry(*s).or_default().push(d.target());
            }
        }
        let mut indeg: BTreeMap<ActivityVarId, usize> =
            declared.iter().map(|&v| (v, 0)).collect();
        for ts in edges.values() {
            for t in ts {
                *indeg.get_mut(t).unwrap() += 1;
            }
        }
        let mut queue: Vec<ActivityVarId> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&v, _)| v)
            .collect();
        let mut seen = 0usize;
        while let Some(v) = queue.pop() {
            seen += 1;
            if let Some(ts) = edges.get(&v) {
                for t in ts {
                    let e = indeg.get_mut(t).unwrap();
                    *e -= 1;
                    if *e == 0 {
                        queue.push(*t);
                    }
                }
            }
        }
        if seen != declared.len() {
            return Err(CoreError::InvalidSchema(
                "dependency graph contains a cycle".into(),
            ));
        }

        Ok(Arc::new(ActivitySchema {
            id: self.id,
            name: self.name,
            kind: self.kind,
            state_schema: self.state_schema,
            resource_vars: self.resource_vars,
            activity_vars: self.activity_vars,
            dependencies: self.dependencies,
            performer: self.performer,
            by_var_name: self.by_var_name,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::StateSchemaId;
    use crate::value::ValueType;

    fn states() -> Arc<ActivityStateSchema> {
        ActivityStateSchema::generic(StateSchemaId(1))
    }

    #[test]
    fn basic_schema_builds_with_resources_and_performer() {
        let s = ActivitySchemaBuilder::basic(ActivitySchemaId(1), "LabTest", states())
            .resource_var("sample", ResourceSchemaId(1), ResourceUsage::Input)
            .resource_var("report", ResourceSchemaId(2), ResourceUsage::Output)
            .resource_var("editor", ResourceSchemaId(3), ResourceUsage::Helper)
            .performed_by(RoleSpec::org("lab-technician"))
            .build()
            .unwrap();
        assert_eq!(s.kind(), ActivityKind::Basic);
        assert_eq!(s.resource_vars().len(), 3);
        assert_eq!(s.performer().unwrap().to_string(), "lab-technician");
        assert!(s.initial_vars().is_empty());
    }

    #[test]
    fn basic_schema_rejects_activity_vars() {
        let mut b = ActivitySchemaBuilder::basic(ActivitySchemaId(1), "X", states());
        b.activity_var("sub", ActivitySchemaId(2), false).unwrap();
        assert!(matches!(b.build(), Err(CoreError::InvalidSchema(_))));
    }

    #[test]
    fn process_schema_flow_and_initial_vars() {
        let mut b = ActivitySchemaBuilder::process(ActivitySchemaId(10), "InfoGathering", states());
        let interview = b.activity_var("interview", ActivitySchemaId(1), false).unwrap();
        let lab = b.activity_var("lab_test", ActivitySchemaId(2), true).unwrap();
        let report = b.activity_var("report", ActivitySchemaId(3), false).unwrap();
        b.sequence(interview, report);
        let s = b.build().unwrap();
        assert!(s.is_process());
        // interview has no inbound edge and is required -> initial.
        // lab_test is optional -> not initial. report is targeted -> not initial.
        assert_eq!(s.initial_vars(), vec![interview]);
        assert_eq!(s.activity_var("lab_test").unwrap().id, lab);
        assert!(s.activity_var("nope").is_err());
    }

    #[test]
    fn dependencies_must_reference_declared_vars() {
        let mut b = ActivitySchemaBuilder::process(ActivitySchemaId(11), "P", states());
        let a = b.activity_var("a", ActivitySchemaId(1), false).unwrap();
        b.sequence(a, ActivityVarId(999_999));
        assert!(matches!(
            b.build(),
            Err(CoreError::UnknownActivityVar(_))
        ));
    }

    #[test]
    fn cyclic_flow_rejected() {
        let mut b = ActivitySchemaBuilder::process(ActivitySchemaId(12), "P", states());
        let a = b.activity_var("a", ActivitySchemaId(1), false).unwrap();
        let c = b.activity_var("c", ActivitySchemaId(1), false).unwrap();
        b.sequence(a, c);
        b.sequence(c, a);
        let err = b.build().unwrap_err();
        assert!(err.to_string().contains("cycle"));
    }

    #[test]
    fn self_dependency_rejected() {
        let mut b = ActivitySchemaBuilder::process(ActivitySchemaId(13), "P", states());
        let a = b.activity_var("a", ActivitySchemaId(1), false).unwrap();
        b.dependency(Dependency::AndJoin {
            sources: vec![a],
            target: a,
        });
        assert!(b.build().is_err());
    }

    #[test]
    fn joins_guards_and_deadlines_build() {
        let mut b = ActivitySchemaBuilder::process(ActivitySchemaId(14), "P", states());
        let a = b.activity_var("a", ActivitySchemaId(1), false).unwrap();
        let c = b.activity_var("c", ActivitySchemaId(1), false).unwrap();
        let d = b.activity_var("d", ActivitySchemaId(1), false).unwrap();
        let e = b.activity_var("e", ActivitySchemaId(1), false).unwrap();
        b.dependency(Dependency::AndJoin {
            sources: vec![a, c],
            target: d,
        });
        b.dependency(Dependency::OrJoin {
            sources: vec![a, c],
            target: e,
        });
        b.dependency(Dependency::Guard {
            target: e,
            context_name: "Ctx".into(),
            field: "go".into(),
            expect: Value::Bool(true),
        });
        b.dependency(Dependency::Deadline {
            target: d,
            context_name: "Ctx".into(),
            field: "deadline".into(),
        });
        let s = b.build().unwrap();
        assert_eq!(s.dependencies().len(), 4);
        assert_eq!(s.dependencies()[3].type_name(), "deadline");
        // a and c are sources only -> initial.
        assert_eq!(s.initial_vars(), vec![a, c]);
    }

    #[test]
    fn duplicate_var_name_rejected() {
        let mut b = ActivitySchemaBuilder::process(ActivitySchemaId(15), "P", states());
        b.activity_var("a", ActivitySchemaId(1), false).unwrap();
        assert!(matches!(
            b.activity_var("a", ActivitySchemaId(2), false),
            Err(CoreError::DuplicateName(_))
        ));
    }

    #[test]
    fn display_renders_schema_structure() {
        let mut b = ActivitySchemaBuilder::process(ActivitySchemaId(16), "TaskForce", states());
        let a = b.activity_var("assess", ActivitySchemaId(1), false).unwrap();
        let r = b.activity_var("report", ActivitySchemaId(2), false).unwrap();
        b.sequence(a, r);
        let s = b.build().unwrap();
        let out = s.to_string();
        assert!(out.contains("process activity schema `TaskForce`"));
        assert!(out.contains("sequence [assess] -> report"));
    }

    #[test]
    fn resource_schema_value_typing_helper() {
        // Sanity: ResourceSchema interplay used by schemas.
        let rs = crate::resource::ResourceSchema::data(ResourceSchemaId(5), "count", ValueType::Int);
        assert!(rs.accepts(&Value::Int(3)));
    }
}
