//! Self-describing values used for data resources, context fields and event
//! parameters.
//!
//! The paper requires events to be *self-contained*: "an event's parameters
//! completely describe the event" (§5). Parameters are name–value pairs, so we
//! need a small dynamic value type. [`Value`] is that type; it is ordered and
//! hashable so values can key maps and participate in deterministic output.

use std::cmp::Ordering;
use std::fmt;

use crate::ids::UserId;
use crate::time::Timestamp;

/// A dynamically-typed value.
///
/// Floats are stored via a total-order wrapper so `Value` can be `Eq`/`Ord`
/// (NaNs compare greater than all other floats, equal to themselves).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Absent / null value (e.g. an optional event parameter that is unset).
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer — the type of the canonical `intInfo` parameter.
    Int(i64),
    /// 64-bit float with total ordering.
    Float(TotalF64),
    /// UTF-8 string.
    Str(String),
    /// An opaque entity id (activity instance, context, …) as a raw `u64`.
    Id(u64),
    /// A participant id.
    User(UserId),
    /// A point on the (simulated) timeline — the type of deadline fields.
    Time(Timestamp),
    /// An ordered list of values (e.g. a scoped role's member list).
    List(Vec<Value>),
}

impl Value {
    /// The [`ValueType`] tag of this value. `Null` has its own type.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Null => ValueType::Null,
            Value::Bool(_) => ValueType::Bool,
            Value::Int(_) => ValueType::Int,
            Value::Float(_) => ValueType::Float,
            Value::Str(_) => ValueType::Str,
            Value::Id(_) => ValueType::Id,
            Value::User(_) => ValueType::User,
            Value::Time(_) => ValueType::Time,
            Value::List(_) => ValueType::List,
        }
    }

    /// Returns the integer payload if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the string payload if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the timestamp payload if this is a `Time`.
    pub fn as_time(&self) -> Option<Timestamp> {
        match self {
            Value::Time(t) => Some(*t),
            _ => None,
        }
    }

    /// Returns the user payload if this is a `User`.
    pub fn as_user(&self) -> Option<UserId> {
        match self {
            Value::User(u) => Some(*u),
            _ => None,
        }
    }

    /// Returns the boolean payload if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// A *comparison key*: maps `Int`, `Float` and `Time` onto a common `i64`
    /// axis so the paper's comparison operators (`Compare1`, `Compare2`,
    /// §5.1.3) can relate deadline timestamps and counters uniformly.
    /// Returns `None` for non-numeric values.
    pub fn comparison_key(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) => Some(f.0 as i64),
            Value::Time(t) => Some(t.millis() as i64),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// True if the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{}", x.0),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Id(i) => write!(f, "#{i}"),
            Value::User(u) => write!(f, "{u}"),
            Value::Time(t) => write!(f, "{t}"),
            Value::List(vs) => {
                write!(f, "[")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(TotalF64(v))
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<Timestamp> for Value {
    fn from(v: Timestamp) -> Self {
        Value::Time(v)
    }
}
impl From<UserId> for Value {
    fn from(v: UserId) -> Self {
        Value::User(v)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v)
    }
}

/// Type tags for [`Value`], used to type data-resource schemas and context
/// field declarations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ValueType {
    /// The null type.
    Null,
    /// Booleans.
    Bool,
    /// Integers.
    Int,
    /// Floats.
    Float,
    /// Strings.
    Str,
    /// Opaque ids.
    Id,
    /// Participant ids.
    User,
    /// Timestamps.
    Time,
    /// Lists.
    List,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ValueType::Null => "null",
            ValueType::Bool => "bool",
            ValueType::Int => "int",
            ValueType::Float => "float",
            ValueType::Str => "str",
            ValueType::Id => "id",
            ValueType::User => "user",
            ValueType::Time => "time",
            ValueType::List => "list",
        };
        f.write_str(s)
    }
}

/// An `f64` with a total order (NaN sorts above everything and equals itself),
/// making [`Value`] usable as a map key and in deterministic sorts.
#[derive(Debug, Clone, Copy)]
pub struct TotalF64(pub f64);

impl PartialEq for TotalF64 {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for TotalF64 {}
impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}
impl std::hash::Hash for TotalF64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_type_tags_match_variants() {
        assert_eq!(Value::Int(1).value_type(), ValueType::Int);
        assert_eq!(Value::from("x").value_type(), ValueType::Str);
        assert_eq!(Value::Null.value_type(), ValueType::Null);
        assert_eq!(
            Value::List(vec![Value::Bool(true)]).value_type(),
            ValueType::List
        );
    }

    #[test]
    fn comparison_key_unifies_numeric_axes() {
        assert_eq!(Value::Int(5).comparison_key(), Some(5));
        assert_eq!(Value::Time(Timestamp::from_millis(9)).comparison_key(), Some(9));
        assert_eq!(Value::from(2.9).comparison_key(), Some(2));
        assert_eq!(Value::from("no").comparison_key(), None);
    }

    #[test]
    fn total_f64_handles_nan() {
        let nan = TotalF64(f64::NAN);
        assert_eq!(nan, nan);
        assert!(TotalF64(1.0) < nan);
        assert!(TotalF64(f64::NEG_INFINITY) < TotalF64(0.0));
    }

    #[test]
    fn display_is_stable() {
        let v = Value::List(vec![Value::Int(1), Value::from("a"), Value::Null]);
        assert_eq!(v.to_string(), "[1, \"a\", null]");
    }

    #[test]
    fn accessors_return_none_on_mismatch() {
        assert_eq!(Value::Int(1).as_str(), None);
        assert_eq!(Value::from("s").as_int(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
    }
}
