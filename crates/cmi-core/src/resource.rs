//! Resource meta types and resource schemas (§3–4, Fig. 3).
//!
//! CORE distinguishes four basic kinds of resources usable during an activity
//! execution: **data**, **helper**, **participant** and **context**. CMM
//! provides a resource *meta type* so applications can define their own
//! resource types (schemas); this module implements that level: a
//! [`ResourceSchema`] is an application-specific resource type instantiated
//! during execution.
//!
//! Data resources carry typed [`Value`]s (workflow-internal / workflow-
//! relevant data). Helper resources are auxiliary programs (e.g. the text
//! editor needed for a writing activity; NetMeeting in the CMI prototype) —
//! modeled as invocable program descriptors. Participant resources are
//! covered by [`crate::participant`] and [`crate::context`] (scoped roles);
//! context resources by [`crate::context`].

use std::fmt;

use crate::ids::ResourceSchemaId;
use crate::value::{Value, ValueType};

/// The four resource kinds of the CORE (§4) — the fixed points of the
/// resource meta type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceKind {
    /// Workflow-internal / workflow-relevant data.
    Data,
    /// Auxiliary programs invoked to implement basic activities.
    Helper,
    /// Humans or programs that perform activities (organizational or scoped
    /// roles).
    Participant,
    /// Named collections of resources carrying a scope.
    Context,
}

impl fmt::Display for ResourceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResourceKind::Data => "data",
            ResourceKind::Helper => "helper",
            ResourceKind::Participant => "participant",
            ResourceKind::Context => "context",
        };
        f.write_str(s)
    }
}

/// How a resource variable is used by an activity schema (Fig. 3: basic
/// activities have input/output and helper variables; process activities have
/// input/output, role and local-data variables; contexts flow through both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceUsage {
    /// Consumed by the activity.
    Input,
    /// Produced by the activity.
    Output,
    /// Auxiliary program needed by a basic activity.
    Helper,
    /// A participant role slot (organizational or scoped).
    Role,
    /// Process-local data.
    LocalData,
    /// A context resource passed into or created by the activity.
    Context,
}

impl fmt::Display for ResourceUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ResourceUsage::Input => "input",
            ResourceUsage::Output => "output",
            ResourceUsage::Helper => "helper",
            ResourceUsage::Role => "role",
            ResourceUsage::LocalData => "local",
            ResourceUsage::Context => "context",
        };
        f.write_str(s)
    }
}

/// An application-specific resource type, instantiated from the CMM resource
/// meta type during process specification (Fig. 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceSchema {
    /// The schema's id.
    pub id: ResourceSchemaId,
    /// Type name (e.g. `LabReport`).
    pub name: String,
    /// Which of the four resource kinds this type refines.
    pub kind: ResourceKind,
    /// For data resources: the value type instances must carry.
    pub value_type: Option<ValueType>,
}

impl ResourceSchema {
    /// A data resource type carrying values of `vt`.
    pub fn data(id: ResourceSchemaId, name: &str, vt: ValueType) -> Self {
        ResourceSchema {
            id,
            name: name.to_owned(),
            kind: ResourceKind::Data,
            value_type: Some(vt),
        }
    }

    /// A helper resource type (auxiliary program).
    pub fn helper(id: ResourceSchemaId, name: &str) -> Self {
        ResourceSchema {
            id,
            name: name.to_owned(),
            kind: ResourceKind::Helper,
            value_type: None,
        }
    }

    /// A participant resource type.
    pub fn participant(id: ResourceSchemaId, name: &str) -> Self {
        ResourceSchema {
            id,
            name: name.to_owned(),
            kind: ResourceKind::Participant,
            value_type: None,
        }
    }

    /// A context resource type.
    pub fn context(id: ResourceSchemaId, name: &str) -> Self {
        ResourceSchema {
            id,
            name: name.to_owned(),
            kind: ResourceKind::Context,
            value_type: None,
        }
    }

    /// Checks whether `v` conforms to this (data) resource type.
    pub fn accepts(&self, v: &Value) -> bool {
        match (self.kind, self.value_type) {
            (ResourceKind::Data, Some(vt)) => v.value_type() == vt || v.is_null(),
            _ => false,
        }
    }
}

/// A helper resource instance: an invocable auxiliary program (the CMI
/// prototype wired NetMeeting and editors in this slot). Invocations are
/// counted so experiments can report helper usage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelperResource {
    /// Descriptor name (e.g. `text-editor`).
    pub name: String,
    /// The command line / program identity it stands for.
    pub program: String,
    /// How many times it has been invoked.
    pub invocations: u64,
}

impl HelperResource {
    /// A new helper descriptor.
    pub fn new(name: &str, program: &str) -> Self {
        HelperResource {
            name: name.to_owned(),
            program: program.to_owned(),
            invocations: 0,
        }
    }

    /// Records an invocation (the simulation of launching the program) and
    /// returns the invocation ordinal.
    pub fn invoke(&mut self) -> u64 {
        self.invocations += 1;
        self.invocations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_schema_type_checks_values() {
        let s = ResourceSchema::data(ResourceSchemaId(1), "LabReport", ValueType::Str);
        assert!(s.accepts(&Value::from("positive")));
        assert!(s.accepts(&Value::Null), "null is allowed for unset data");
        assert!(!s.accepts(&Value::Int(1)));
    }

    #[test]
    fn non_data_schemas_accept_nothing() {
        let s = ResourceSchema::helper(ResourceSchemaId(2), "editor");
        assert!(!s.accepts(&Value::from("x")));
        assert_eq!(s.kind, ResourceKind::Helper);
        assert_eq!(s.value_type, None);
    }

    #[test]
    fn all_four_kinds_constructible() {
        let kinds = [
            ResourceSchema::data(ResourceSchemaId(1), "d", ValueType::Int).kind,
            ResourceSchema::helper(ResourceSchemaId(2), "h").kind,
            ResourceSchema::participant(ResourceSchemaId(3), "p").kind,
            ResourceSchema::context(ResourceSchemaId(4), "c").kind,
        ];
        assert_eq!(
            kinds,
            [
                ResourceKind::Data,
                ResourceKind::Helper,
                ResourceKind::Participant,
                ResourceKind::Context
            ]
        );
    }

    #[test]
    fn helper_invocation_counting() {
        let mut h = HelperResource::new("editor", "/usr/bin/vi");
        assert_eq!(h.invoke(), 1);
        assert_eq!(h.invoke(), 2);
        assert_eq!(h.invocations, 2);
    }

    #[test]
    fn display_of_kind_and_usage() {
        assert_eq!(ResourceKind::Context.to_string(), "context");
        assert_eq!(ResourceUsage::LocalData.to_string(), "local");
    }
}
