//! Unified role references and detection-time resolution (§4, §5.2).
//!
//! An awareness delivery role "may be either a global (organizational) role
//! or a scoped (dynamic) role". [`RoleRef`] is that sum type, and
//! [`resolve_role`] performs the resolution **at composite event detection
//! time** against the current directory and context state — never earlier —
//! so membership changes between specification and detection are honored.

use std::fmt;

use crate::context::ContextManager;
use crate::error::CoreResult;
use crate::ids::{ContextId, RoleId, UserId};
use crate::participant::Directory;

/// A reference to a role a participant may play.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RoleRef {
    /// A global organizational role (e.g. `epidemiologist`).
    Org(RoleId),
    /// A scoped role addressed by its enclosing live context and its name
    /// (e.g. `InfoRequestContext.Requestor`).
    Scoped {
        /// The enclosing context.
        context: ContextId,
        /// The role's name within that context.
        name: String,
    },
}

impl RoleRef {
    /// Convenience constructor for scoped role references.
    pub fn scoped(context: ContextId, name: &str) -> RoleRef {
        RoleRef::Scoped {
            context,
            name: name.to_owned(),
        }
    }
}

impl fmt::Display for RoleRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoleRef::Org(r) => write!(f, "org:{r}"),
            RoleRef::Scoped { context, name } => write!(f, "{context}.{name}"),
        }
    }
}

/// A *design-time* role expression inside a schema, naming roles before any
/// instance (and hence any concrete context) exists. The runtime binds it to
/// a [`RoleRef`] against a concrete process instance.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RoleSpec {
    /// An organizational role, by name.
    Org(String),
    /// A scoped role: the name of a context visible to the process, plus the
    /// role name inside it.
    Scoped {
        /// Schema-level context name (e.g. `TaskForceContext`).
        context_name: String,
        /// Role name inside the context (e.g. `Leader`).
        role: String,
    },
}

impl RoleSpec {
    /// Shorthand for an organizational role spec.
    pub fn org(name: &str) -> RoleSpec {
        RoleSpec::Org(name.to_owned())
    }

    /// Shorthand for a scoped role spec.
    pub fn scoped(context_name: &str, role: &str) -> RoleSpec {
        RoleSpec::Scoped {
            context_name: context_name.to_owned(),
            role: role.to_owned(),
        }
    }
}

impl fmt::Display for RoleSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RoleSpec::Org(n) => write!(f, "{n}"),
            RoleSpec::Scoped { context_name, role } => write!(f, "{context_name}.{role}"),
        }
    }
}

/// Resolves a role reference to its current members. Organizational roles
/// resolve against the directory; scoped roles against their (live) context.
pub fn resolve_role(
    role: &RoleRef,
    directory: &Directory,
    contexts: &ContextManager,
) -> CoreResult<Vec<UserId>> {
    match role {
        RoleRef::Org(r) => directory.resolve(*r),
        RoleRef::Scoped { context, name } => contexts.resolve_role(*context, name),
    }
}

/// True if `user` currently plays `role`.
pub fn plays_role(
    role: &RoleRef,
    user: UserId,
    directory: &Directory,
    contexts: &ContextManager,
) -> bool {
    resolve_role(role, directory, contexts)
        .map(|m| m.contains(&user))
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CoreError;
    use crate::time::SimClock;
    use std::sync::Arc;

    fn setup() -> (Directory, ContextManager) {
        (
            Directory::new(),
            ContextManager::new(Arc::new(SimClock::new())),
        )
    }

    #[test]
    fn org_and_scoped_roles_resolve_uniformly() {
        let (dir, ctxs) = setup();
        let u1 = dir.add_user("alice");
        let u2 = dir.add_user("bob");
        let epi = dir.add_role("epidemiologist").unwrap();
        dir.assign(u1, epi).unwrap();
        dir.assign(u2, epi).unwrap();

        let ctx = ctxs.create("TaskForceContext", None);
        ctxs.create_role(ctx, "Leader", &[u1]).unwrap();

        assert_eq!(
            resolve_role(&RoleRef::Org(epi), &dir, &ctxs).unwrap(),
            vec![u1, u2]
        );
        assert_eq!(
            resolve_role(&RoleRef::scoped(ctx, "Leader"), &dir, &ctxs).unwrap(),
            vec![u1]
        );
        assert!(plays_role(&RoleRef::scoped(ctx, "Leader"), u1, &dir, &ctxs));
        assert!(!plays_role(&RoleRef::scoped(ctx, "Leader"), u2, &dir, &ctxs));
    }

    #[test]
    fn resolution_reflects_changes_at_call_time() {
        // "R_P ... is resolved at composite event detection time" (§5).
        let (dir, ctxs) = setup();
        let u1 = dir.add_user("alice");
        let u2 = dir.add_user("bob");
        let ctx = ctxs.create("C", None);
        ctxs.create_role(ctx, "R", &[u1]).unwrap();
        let role = RoleRef::scoped(ctx, "R");

        assert_eq!(resolve_role(&role, &dir, &ctxs).unwrap(), vec![u1]);
        ctxs.add_role_member(ctx, "R", u2).unwrap();
        ctxs.remove_role_member(ctx, "R", u1).unwrap();
        assert_eq!(resolve_role(&role, &dir, &ctxs).unwrap(), vec![u2]);
    }

    #[test]
    fn scoped_resolution_fails_after_scope_end() {
        let (dir, ctxs) = setup();
        let u = dir.add_user("alice");
        let ctx = ctxs.create("C", None);
        ctxs.create_role(ctx, "R", &[u]).unwrap();
        ctxs.destroy(ctx).unwrap();
        assert!(matches!(
            resolve_role(&RoleRef::scoped(ctx, "R"), &dir, &ctxs),
            Err(CoreError::ScopeEnded(_))
        ));
    }

    #[test]
    fn display_forms() {
        let r = RoleRef::Org(RoleId(3));
        assert_eq!(r.to_string(), "org:r3");
        let s = RoleRef::scoped(ContextId(2), "Leader");
        assert_eq!(s.to_string(), "cx2.Leader");
        assert_eq!(RoleSpec::org("doc").to_string(), "doc");
        assert_eq!(
            RoleSpec::scoped("TaskForceContext", "Leader").to_string(),
            "TaskForceContext.Leader"
        );
    }
}
