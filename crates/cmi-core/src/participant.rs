//! Participant resources and the organizational role directory (§4).
//!
//! Participant resources are either humans or programs: "actors in the real
//! world that take responsibility to start and perform activities". Both may
//! play one or multiple roles. *Basic* participant resources are
//! **organizational roles** — global roles kept in this directory. *Advanced*
//! participant resources are **scoped roles**, which live inside context
//! resources (see [`crate::context`]).
//!
//! The directory also tracks the per-user attributes the paper's awareness
//! role assignment functions consult (§5.3): whether the user is currently
//! signed on, and a load figure.

use std::collections::{BTreeMap, BTreeSet};

use parking_lot::RwLock;

use crate::error::{CoreError, CoreResult};
use crate::ids::{IdGen, RoleId, UserId};

/// Whether a participant is a human or an automated program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParticipantKind {
    /// A human user.
    Human,
    /// An automated program acting as a participant.
    Program,
}

/// A registered participant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Participant {
    /// The participant's id.
    pub id: UserId,
    /// Display name.
    pub name: String,
    /// Human or program.
    pub kind: ParticipantKind,
    /// True while the participant has a client session (used by the
    /// `SignedOn` awareness role assignment).
    pub signed_on: bool,
    /// Number of outstanding work/awareness items (used by the
    /// `LoadBalanced` awareness role assignment).
    pub load: u32,
}

/// An organizational (global) role.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrgRole {
    /// The role's id.
    pub id: RoleId,
    /// Role name, unique within the directory (e.g. `epidemiologist`).
    pub name: String,
}

#[derive(Debug, Default)]
struct DirectoryInner {
    users: BTreeMap<UserId, Participant>,
    roles: BTreeMap<RoleId, OrgRole>,
    role_by_name: BTreeMap<String, RoleId>,
    members: BTreeMap<RoleId, BTreeSet<UserId>>,
}

/// The organization directory: participants, organizational roles, and role
/// membership. Thread-safe; resolution order is deterministic (sorted by id).
#[derive(Debug, Default)]
pub struct Directory {
    inner: RwLock<DirectoryInner>,
    ids: IdGen,
}

impl Directory {
    /// An empty directory.
    pub fn new() -> Self {
        Directory {
            inner: RwLock::new(DirectoryInner::default()),
            ids: IdGen::new(),
        }
    }

    /// Registers a participant and returns their id.
    pub fn add_participant(&self, name: &str, kind: ParticipantKind) -> UserId {
        let id: UserId = self.ids.next();
        self.inner.write().users.insert(
            id,
            Participant {
                id,
                name: name.to_owned(),
                kind,
                signed_on: false,
                load: 0,
            },
        );
        id
    }

    /// Shorthand for registering a human participant.
    pub fn add_user(&self, name: &str) -> UserId {
        self.add_participant(name, ParticipantKind::Human)
    }

    /// Creates an organizational role. Fails on duplicate names.
    pub fn add_role(&self, name: &str) -> CoreResult<RoleId> {
        let mut inner = self.inner.write();
        if inner.role_by_name.contains_key(name) {
            return Err(CoreError::DuplicateName(name.to_owned()));
        }
        let id: RoleId = self.ids.next();
        inner.roles.insert(
            id,
            OrgRole {
                id,
                name: name.to_owned(),
            },
        );
        inner.role_by_name.insert(name.to_owned(), id);
        inner.members.insert(id, BTreeSet::new());
        Ok(id)
    }

    /// Looks an organizational role up by name.
    pub fn role_by_name(&self, name: &str) -> Option<RoleId> {
        self.inner.read().role_by_name.get(name).copied()
    }

    /// Looks a participant up by display name (first match in id order).
    /// Network sign-on resolves the wire-carried user name through this.
    pub fn user_by_name(&self, name: &str) -> Option<UserId> {
        self.inner
            .read()
            .users
            .values()
            .find(|p| p.name == name)
            .map(|p| p.id)
    }

    /// The role's name.
    pub fn role_name(&self, role: RoleId) -> CoreResult<String> {
        self.inner
            .read()
            .roles
            .get(&role)
            .map(|r| r.name.clone())
            .ok_or(CoreError::UnknownRole(role))
    }

    /// Adds `user` to `role`.
    pub fn assign(&self, user: UserId, role: RoleId) -> CoreResult<()> {
        let mut inner = self.inner.write();
        if !inner.users.contains_key(&user) {
            return Err(CoreError::UnknownUser(user));
        }
        inner
            .members
            .get_mut(&role)
            .ok_or(CoreError::UnknownRole(role))?
            .insert(user);
        Ok(())
    }

    /// Removes `user` from `role` (no-op if not a member).
    pub fn unassign(&self, user: UserId, role: RoleId) -> CoreResult<()> {
        let mut inner = self.inner.write();
        inner
            .members
            .get_mut(&role)
            .ok_or(CoreError::UnknownRole(role))?
            .remove(&user);
        Ok(())
    }

    /// Resolves an organizational role to its current members, in id order.
    pub fn resolve(&self, role: RoleId) -> CoreResult<Vec<UserId>> {
        self.inner
            .read()
            .members
            .get(&role)
            .map(|s| s.iter().copied().collect())
            .ok_or(CoreError::UnknownRole(role))
    }

    /// True if `user` currently plays `role`.
    pub fn plays(&self, user: UserId, role: RoleId) -> bool {
        self.inner
            .read()
            .members
            .get(&role)
            .is_some_and(|s| s.contains(&user))
    }

    /// A snapshot of the participant record.
    pub fn participant(&self, user: UserId) -> CoreResult<Participant> {
        self.inner
            .read()
            .users
            .get(&user)
            .cloned()
            .ok_or(CoreError::UnknownUser(user))
    }

    /// Marks the participant signed on / off.
    pub fn set_signed_on(&self, user: UserId, on: bool) -> CoreResult<()> {
        let mut inner = self.inner.write();
        let u = inner
            .users
            .get_mut(&user)
            .ok_or(CoreError::UnknownUser(user))?;
        u.signed_on = on;
        Ok(())
    }

    /// Sets the participant's load figure.
    pub fn set_load(&self, user: UserId, load: u32) -> CoreResult<()> {
        let mut inner = self.inner.write();
        let u = inner
            .users
            .get_mut(&user)
            .ok_or(CoreError::UnknownUser(user))?;
        u.load = load;
        Ok(())
    }

    /// Adds `delta` (possibly negative) to the participant's load,
    /// saturating at zero.
    pub fn adjust_load(&self, user: UserId, delta: i32) -> CoreResult<u32> {
        let mut inner = self.inner.write();
        let u = inner
            .users
            .get_mut(&user)
            .ok_or(CoreError::UnknownUser(user))?;
        u.load = u.load.saturating_add_signed(delta);
        Ok(u.load)
    }

    /// Number of registered participants.
    pub fn participant_count(&self) -> usize {
        self.inner.read().users.len()
    }

    /// Number of organizational roles.
    pub fn role_count(&self) -> usize {
        self.inner.read().roles.len()
    }

    /// All participant ids, in id order.
    pub fn participants(&self) -> Vec<UserId> {
        self.inner.read().users.keys().copied().collect()
    }

    /// All organizational roles, in id order.
    pub fn roles(&self) -> Vec<OrgRole> {
        self.inner.read().roles.values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_resolve_roundtrip() {
        let d = Directory::new();
        let alice = d.add_user("alice");
        let bob = d.add_user("bob");
        let epi = d.add_role("epidemiologist").unwrap();
        d.assign(alice, epi).unwrap();
        d.assign(bob, epi).unwrap();
        assert_eq!(d.resolve(epi).unwrap(), vec![alice, bob]);
        assert!(d.plays(alice, epi));
        d.unassign(alice, epi).unwrap();
        assert_eq!(d.resolve(epi).unwrap(), vec![bob]);
        assert!(!d.plays(alice, epi));
    }

    #[test]
    fn users_may_play_multiple_roles() {
        let d = Directory::new();
        let u = d.add_user("carol");
        let r1 = d.add_role("doctor").unwrap();
        let r2 = d.add_role("task-force-eligible").unwrap();
        d.assign(u, r1).unwrap();
        d.assign(u, r2).unwrap();
        assert!(d.plays(u, r1) && d.plays(u, r2));
    }

    #[test]
    fn duplicate_role_name_rejected() {
        let d = Directory::new();
        d.add_role("leader").unwrap();
        assert!(matches!(
            d.add_role("leader"),
            Err(CoreError::DuplicateName(_))
        ));
    }

    #[test]
    fn unknown_entities_error() {
        let d = Directory::new();
        assert!(matches!(
            d.resolve(RoleId(99)),
            Err(CoreError::UnknownRole(_))
        ));
        assert!(matches!(
            d.assign(UserId(99), RoleId(1)),
            Err(CoreError::UnknownUser(_))
        ));
        assert!(matches!(
            d.participant(UserId(1)),
            Err(CoreError::UnknownUser(_))
        ));
    }

    #[test]
    fn sign_on_and_load_tracking() {
        let d = Directory::new();
        let u = d.add_user("dave");
        assert!(!d.participant(u).unwrap().signed_on);
        d.set_signed_on(u, true).unwrap();
        assert!(d.participant(u).unwrap().signed_on);
        d.set_load(u, 5).unwrap();
        assert_eq!(d.adjust_load(u, -2).unwrap(), 3);
        assert_eq!(d.adjust_load(u, -10).unwrap(), 0, "load saturates at 0");
    }

    #[test]
    fn programs_are_participants_too() {
        let d = Directory::new();
        let bot = d.add_participant("lab-robot", ParticipantKind::Program);
        assert_eq!(d.participant(bot).unwrap().kind, ParticipantKind::Program);
    }

    #[test]
    fn role_lookup_by_name() {
        let d = Directory::new();
        let r = d.add_role("media-liaison").unwrap();
        assert_eq!(d.role_by_name("media-liaison"), Some(r));
        assert_eq!(d.role_by_name("nope"), None);
        assert_eq!(d.role_name(r).unwrap(), "media-liaison");
    }
}
