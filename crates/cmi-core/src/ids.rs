//! Strongly-typed identifiers for every CMM entity.
//!
//! The paper's event parameter lists (§5.1.1) reference activity instance ids,
//! process schema ids, process instance ids, activity variable ids, context ids
//! and users. Each gets its own newtype so they cannot be confused, and each is
//! a plain `u64` so they are `Copy`, hash fast, and serialize compactly.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u64);

        impl $name {
            /// Raw numeric value of the identifier.
            #[inline]
            pub fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for u64 {
            fn from(id: $name) -> u64 {
                id.0
            }
        }
    };
}

define_id!(
    /// Identifies an activity schema (basic or process). Process schemas are
    /// activity schemas of kind `Process`, so the paper's "process schema id"
    /// is an [`ActivitySchemaId`] as well.
    ActivitySchemaId,
    "as"
);
define_id!(
    /// Identifies a single executing activity instance. Process instances are
    /// activity instances of a process schema, so the paper's "process
    /// instance id" is an [`ActivityInstanceId`] too.
    ActivityInstanceId,
    "ai"
);
define_id!(
    /// Identifies an activity *variable* within a process schema (the slot a
    /// subactivity occupies, not the subactivity's own schema).
    ActivityVarId,
    "av"
);
define_id!(
    /// Identifies an activity state schema (the forest of states plus the
    /// transition diagram over its leaves).
    StateSchemaId,
    "ss"
);
define_id!(
    /// Identifies a resource schema (data, helper, participant or context).
    ResourceSchemaId,
    "rs"
);
define_id!(
    /// Identifies a live context resource instance.
    ContextId,
    "cx"
);
define_id!(
    /// Identifies a human or program participant.
    UserId,
    "u"
);
define_id!(
    /// Identifies a *global* (organizational) role. Scoped roles are not
    /// identified this way: they are addressed by `(ContextId, name)` because
    /// they live and die with their context (§4).
    RoleId,
    "r"
);
define_id!(
    /// Identifies a compiled composite-event specification (awareness
    /// description DAG).
    SpecId,
    "sp"
);
define_id!(
    /// Identifies an awareness schema `(AD, R, RA)` registered with the
    /// awareness engine.
    AwarenessSchemaId,
    "aw"
);

/// A process schema id is an activity schema id whose schema kind is
/// `Process`; this re-export (same type, second name) documents intent at
/// API boundaries while keeping constructor syntax usable.
pub use self::ActivitySchemaId as ProcessSchemaId;
/// A process instance id is an activity instance id whose schema kind is
/// `Process`; same-type re-export, see [`ProcessSchemaId`].
pub use self::ActivityInstanceId as ProcessInstanceId;

/// Monotonic generator for fresh identifiers.
///
/// One generator is shared per repository/engine; ids are unique within it.
#[derive(Debug, Default)]
pub struct IdGen {
    next: AtomicU64,
}

impl IdGen {
    /// Creates a generator starting at 1 (0 is reserved so a default id is
    /// recognizably "unset" in debug output).
    pub fn new() -> Self {
        IdGen {
            next: AtomicU64::new(1),
        }
    }

    /// Returns the next raw id value.
    #[inline]
    pub fn next_raw(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Returns a fresh id of the requested newtype.
    #[inline]
    pub fn next<T: From<u64>>(&self) -> T {
        T::from(self.next_raw())
    }
}

macro_rules! impl_from_u64 {
    ($($name:ident),* $(,)?) => {
        $(impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        })*
    };
}

impl_from_u64!(
    ActivitySchemaId,
    ActivityInstanceId,
    ActivityVarId,
    StateSchemaId,
    ResourceSchemaId,
    ContextId,
    UserId,
    RoleId,
    SpecId,
    AwarenessSchemaId,
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types_with_prefixed_debug() {
        let a = ActivitySchemaId(7);
        let b = ActivityInstanceId(7);
        assert_eq!(format!("{a:?}"), "as7");
        assert_eq!(format!("{b}"), "ai7");
        assert_eq!(a.raw(), b.raw());
    }

    #[test]
    fn idgen_is_monotonic_and_starts_at_one() {
        let g = IdGen::new();
        let first: UserId = g.next();
        let second: UserId = g.next();
        assert_eq!(first, UserId(1));
        assert_eq!(second, UserId(2));
    }

    #[test]
    fn idgen_is_thread_safe() {
        let g = std::sync::Arc::new(IdGen::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| g.next_raw()).collect::<Vec<_>>()
            }));
        }
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 8000, "ids must never collide across threads");
    }

    #[test]
    fn ids_expose_transparent_raw_value() {
        let id = ContextId(42);
        assert_eq!(format!("{}", id.raw()), "42");
        assert_eq!(u64::from(id), 42);
    }
}
