//! # cmi-core — the CORE of the Collaboration Management Model
//!
//! This crate implements the CORE model of CMI (Baker, Georgakopoulos,
//! Schuster, Cassandra, Cichocki — CoopIS'99 / ICDE 2000): the common basis
//! that the Coordination Model (`cmi-coord`) and the Awareness Model
//! (`cmi-awareness`) extend.
//!
//! The CORE provides:
//!
//! * **Activity state schemas** ([`state_schema`]) — a forest of states whose
//!   leaves carry the transition diagram, including the generic WfMC-style
//!   schema of Fig. 4 and application-specific substate refinement.
//! * **Activity schemas** ([`schema`]) — basic and process activities with
//!   typed resource variables, activity variables and the fixed set of
//!   dependency types (Fig. 3).
//! * **Resources** ([`resource`], [`participant`], [`context`]) — the four
//!   resource kinds: data, helper, participant and context. Context resources
//!   are scoped collections of named fields, and **scoped roles** — the
//!   cornerstone of awareness provisioning — live inside them.
//! * **Instances** ([`instance`]) — schema instantiation and validated state
//!   transitions, each producing an activity state change event with the
//!   exact parameter set of §5.1.1.
//! * **Meta-model introspection** ([`meta`]) — the CMM structure of Figs. 2–3
//!   as data.
//!
//! Primitive events (activity state changes, context field changes) are
//! published synchronously to subscribed listeners; `cmi-events` adapts them
//! into the composite-event substrate.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod context;
pub mod error;
pub mod ids;
pub mod instance;
pub mod meta;
pub mod participant;
pub mod repository;
pub mod resource;
pub mod roles;
pub mod schema;
pub mod state_schema;
pub mod time;
pub mod value;

pub use context::{ContextFieldChange, ContextManager};
pub use error::{CoreError, CoreResult};
pub use ids::{
    ActivityInstanceId, ActivitySchemaId, ActivityVarId, AwarenessSchemaId, ContextId, IdGen,
    ProcessInstanceId, ProcessSchemaId, ResourceSchemaId, RoleId, SpecId, StateSchemaId, UserId,
};
pub use instance::{ActivityStateChange, InstanceSnapshot, InstanceStore};
pub use participant::{Directory, OrgRole, Participant, ParticipantKind};
pub use repository::SchemaRepository;
pub use resource::{HelperResource, ResourceKind, ResourceSchema, ResourceUsage};
pub use roles::{plays_role, resolve_role, RoleRef, RoleSpec};
pub use schema::{
    ActivityKind, ActivitySchema, ActivitySchemaBuilder, ActivityVar, Dependency, ResourceVar,
};
pub use state_schema::{ActivityStateSchema, ActivityStateSchemaBuilder, StateRef};
pub use time::{Clock, Duration, SimClock, Timestamp};
pub use value::{TotalF64, Value, ValueType};
