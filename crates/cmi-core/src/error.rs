//! Error types for the CORE model.

use std::fmt;

use crate::ids::{ActivityInstanceId, ActivitySchemaId, ActivityVarId, ContextId, RoleId, UserId};

/// Errors raised by CORE model operations (schema construction, state
/// transitions, resource/context/role manipulation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// A schema failed structural validation; the message says which rule.
    InvalidSchema(String),
    /// A state name was not found in a state schema.
    UnknownState(String),
    /// Attempted a state transition that the activity state schema forbids.
    IllegalTransition {
        /// Current (leaf) state name.
        from: String,
        /// Requested target state name.
        to: String,
    },
    /// A transition was attempted from or to a non-leaf state.
    NonLeafState(String),
    /// Referenced an activity schema that is not registered.
    UnknownActivitySchema(ActivitySchemaId),
    /// Referenced an activity instance that does not exist.
    UnknownActivityInstance(ActivityInstanceId),
    /// Referenced an activity variable not declared by the process schema.
    UnknownActivityVar(ActivityVarId),
    /// Referenced a context that does not exist or is already destroyed.
    UnknownContext(ContextId),
    /// The context exists but the named field is not present.
    UnknownContextField {
        /// The context.
        context: ContextId,
        /// The missing field name.
        field: String,
    },
    /// A context field exists but holds a different value type.
    ContextFieldType {
        /// The field name.
        field: String,
        /// Explanation of the mismatch.
        detail: String,
    },
    /// Referenced an organizational role that is not in the directory.
    UnknownRole(RoleId),
    /// Referenced a scoped role not present in its context.
    UnknownScopedRole {
        /// The enclosing context.
        context: ContextId,
        /// The missing role name.
        name: String,
    },
    /// The scoped role's enclosing context scope has ended; the role is no
    /// longer resolvable (§4: lifetime is restricted to the scope's).
    ScopeEnded(ContextId),
    /// Referenced a user not present in the directory.
    UnknownUser(UserId),
    /// A name collided with an existing declaration.
    DuplicateName(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidSchema(m) => write!(f, "invalid schema: {m}"),
            CoreError::UnknownState(s) => write!(f, "unknown state `{s}`"),
            CoreError::IllegalTransition { from, to } => {
                write!(f, "illegal state transition `{from}` -> `{to}`")
            }
            CoreError::NonLeafState(s) => {
                write!(f, "state `{s}` is not a leaf; transitions must connect leaves")
            }
            CoreError::UnknownActivitySchema(id) => write!(f, "unknown activity schema {id}"),
            CoreError::UnknownActivityInstance(id) => write!(f, "unknown activity instance {id}"),
            CoreError::UnknownActivityVar(id) => write!(f, "unknown activity variable {id}"),
            CoreError::UnknownContext(id) => write!(f, "unknown context {id}"),
            CoreError::UnknownContextField { context, field } => {
                write!(f, "context {context} has no field `{field}`")
            }
            CoreError::ContextFieldType { field, detail } => {
                write!(f, "context field `{field}` type error: {detail}")
            }
            CoreError::UnknownRole(id) => write!(f, "unknown organizational role {id}"),
            CoreError::UnknownScopedRole { context, name } => {
                write!(f, "context {context} has no scoped role `{name}`")
            }
            CoreError::ScopeEnded(id) => {
                write!(f, "context scope {id} has ended; scoped roles inside it are gone")
            }
            CoreError::UnknownUser(id) => write!(f, "unknown user {id}"),
            CoreError::DuplicateName(n) => write!(f, "duplicate name `{n}`"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Convenience alias.
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_helpfully() {
        let e = CoreError::IllegalTransition {
            from: "Ready".into(),
            to: "Closed".into(),
        };
        assert_eq!(e.to_string(), "illegal state transition `Ready` -> `Closed`");
        let e = CoreError::ScopeEnded(ContextId(4));
        assert!(e.to_string().contains("cx4"));
    }
}
