//! Context resources and scoped roles (§4, §5.1.1).
//!
//! A *context resource* is a collection of named resources — name–value pairs
//! called **fields** — accessible only via context references, which is what
//! lets CMM associate a *scope* with it. A context may be attached to several
//! process instances (resource scoping), and every field modification produces
//! a **context field change event** with exactly the parameters listed in
//! §5.1.1.
//!
//! **Scoped roles** are the advanced participant resources that live inside a
//! context: dynamically created, visible only to activity instances with
//! access to the enclosing context, and with a lifetime bounded by the
//! context's. Destroying the context ends the scope; resolving any of its
//! roles afterwards fails with [`CoreError::ScopeEnded`].
//!
//! Scoped-role membership changes are *also* published as context field
//! change events (the role name is the field, the member list is the value),
//! so a single primitive producer — `E_context` — covers both, as in the
//! paper's implementation where context scripts manipulate context resources.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::{CoreError, CoreResult};
use crate::ids::{ContextId, IdGen, ProcessInstanceId, ProcessSchemaId, UserId};
use crate::time::{Clock, Timestamp};
use crate::value::Value;

/// A context field change event — the payload of the primitive producer
/// `E_context` with type `T_context` (§5.1.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextFieldChange {
    /// The time of the event.
    pub time: Timestamp,
    /// The id of the context instance.
    pub context_id: ContextId,
    /// The context's name (used by the context filter operator's `Cname`).
    pub context_name: String,
    /// The `(processSchemaId, processInstanceId)` tuples of the processes
    /// this context is associated with.
    pub processes: Vec<(ProcessSchemaId, ProcessInstanceId)>,
    /// The field being modified.
    pub field_name: String,
    /// The old value, if the field previously existed.
    pub old_value: Option<Value>,
    /// The new value.
    pub new_value: Value,
}

impl fmt::Display for ContextFieldChange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}.{}: {} -> {}",
            self.time,
            self.context_name,
            self.field_name,
            self.old_value
                .as_ref()
                .map_or_else(|| "(unset)".to_owned(), |v| v.to_string()),
            self.new_value
        )
    }
}

/// Callback invoked synchronously on every context field change. Event source
/// agents (§6.3) register one of these to feed the awareness engine.
pub type ContextChangeListener = Arc<dyn Fn(&ContextFieldChange) + Send + Sync>;

#[derive(Debug)]
struct ContextState {
    id: ContextId,
    name: String,
    fields: BTreeMap<String, Value>,
    roles: BTreeMap<String, BTreeSet<UserId>>,
    processes: BTreeSet<(ProcessSchemaId, ProcessInstanceId)>,
    alive: bool,
}

impl ContextState {
    fn process_list(&self) -> Vec<(ProcessSchemaId, ProcessInstanceId)> {
        self.processes.iter().copied().collect()
    }
}

/// Owns all live (and ended) context resources; the CORE engine's context
/// store. Field and role mutations emit [`ContextFieldChange`] events to the
/// registered listeners, in mutation order.
pub struct ContextManager {
    clock: Arc<dyn Clock>,
    contexts: RwLock<BTreeMap<ContextId, ContextState>>,
    listeners: RwLock<Vec<ContextChangeListener>>,
    ids: IdGen,
}

impl fmt::Debug for ContextManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ContextManager")
            .field("contexts", &self.contexts.read().len())
            .field("listeners", &self.listeners.read().len())
            .finish()
    }
}

impl ContextManager {
    /// A manager reading timestamps from `clock`.
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        ContextManager {
            clock,
            contexts: RwLock::new(BTreeMap::new()),
            listeners: RwLock::new(Vec::new()),
            ids: IdGen::new(),
        }
    }

    /// Registers a listener for all subsequent context field changes.
    pub fn subscribe(&self, l: ContextChangeListener) {
        self.listeners.write().push(l);
    }

    fn emit(&self, ev: ContextFieldChange) {
        let listeners = self.listeners.read();
        for l in listeners.iter() {
            l(&ev);
        }
    }

    /// Creates a context named `name`, optionally attached to a process
    /// instance, and returns its reference.
    pub fn create(
        &self,
        name: &str,
        attach_to: Option<(ProcessSchemaId, ProcessInstanceId)>,
    ) -> ContextId {
        let id: ContextId = self.ids.next();
        let mut processes = BTreeSet::new();
        if let Some(p) = attach_to {
            processes.insert(p);
        }
        self.contexts.write().insert(
            id,
            ContextState {
                id,
                name: name.to_owned(),
                fields: BTreeMap::new(),
                roles: BTreeMap::new(),
                processes,
                alive: true,
            },
        );
        id
    }

    /// Attaches the context to an additional process instance — e.g. the task
    /// force context being "passed to the information request subprocess"
    /// (§5.4).
    pub fn attach(
        &self,
        ctx: ContextId,
        process: (ProcessSchemaId, ProcessInstanceId),
    ) -> CoreResult<()> {
        let mut g = self.contexts.write();
        let c = live_mut(&mut g, ctx)?;
        c.processes.insert(process);
        Ok(())
    }

    /// Ends the context's scope. Its scoped roles become unresolvable and all
    /// further mutation fails; reads of past fields keep working so that
    /// post-mortem inspection is possible.
    pub fn destroy(&self, ctx: ContextId) -> CoreResult<()> {
        let mut g = self.contexts.write();
        let c = g.get_mut(&ctx).ok_or(CoreError::UnknownContext(ctx))?;
        c.alive = false;
        Ok(())
    }

    /// True while the context's scope is live.
    pub fn is_alive(&self, ctx: ContextId) -> bool {
        self.contexts.read().get(&ctx).is_some_and(|c| c.alive)
    }

    /// The context's name.
    pub fn name(&self, ctx: ContextId) -> CoreResult<String> {
        self.contexts
            .read()
            .get(&ctx)
            .map(|c| c.name.clone())
            .ok_or(CoreError::UnknownContext(ctx))
    }

    /// The processes the context is attached to.
    pub fn processes(
        &self,
        ctx: ContextId,
    ) -> CoreResult<Vec<(ProcessSchemaId, ProcessInstanceId)>> {
        self.contexts
            .read()
            .get(&ctx)
            .map(|c| c.process_list())
            .ok_or(CoreError::UnknownContext(ctx))
    }

    /// Sets (creating or overwriting) a field, emitting a field change event.
    pub fn set_field(&self, ctx: ContextId, field: &str, value: Value) -> CoreResult<()> {
        let ev = {
            let mut g = self.contexts.write();
            let c = live_mut(&mut g, ctx)?;
            let old = c.fields.insert(field.to_owned(), value.clone());
            ContextFieldChange {
                time: self.clock.now(),
                context_id: ctx,
                context_name: c.name.clone(),
                processes: c.process_list(),
                field_name: field.to_owned(),
                old_value: old,
                new_value: value,
            }
        };
        self.emit(ev);
        Ok(())
    }

    /// Reads a field's current value.
    pub fn get_field(&self, ctx: ContextId, field: &str) -> CoreResult<Value> {
        let g = self.contexts.read();
        let c = g.get(&ctx).ok_or(CoreError::UnknownContext(ctx))?;
        c.fields
            .get(field)
            .cloned()
            .ok_or_else(|| CoreError::UnknownContextField {
                context: ctx,
                field: field.to_owned(),
            })
    }

    /// All field names currently present.
    pub fn field_names(&self, ctx: ContextId) -> CoreResult<Vec<String>> {
        let g = self.contexts.read();
        let c = g.get(&ctx).ok_or(CoreError::UnknownContext(ctx))?;
        Ok(c.fields.keys().cloned().collect())
    }

    /// Creates a scoped role with the given initial members; the membership is
    /// also published as a context field change (field = role name).
    pub fn create_role(&self, ctx: ContextId, role: &str, members: &[UserId]) -> CoreResult<()> {
        let ev = {
            let mut g = self.contexts.write();
            let c = live_mut(&mut g, ctx)?;
            if c.roles.contains_key(role) || c.fields.contains_key(role) {
                return Err(CoreError::DuplicateName(role.to_owned()));
            }
            let set: BTreeSet<UserId> = members.iter().copied().collect();
            c.roles.insert(role.to_owned(), set.clone());
            role_change_event(self.clock.now(), c, role, None, &set)
        };
        self.emit(ev);
        Ok(())
    }

    /// Adds a member to a scoped role, emitting a change event.
    pub fn add_role_member(&self, ctx: ContextId, role: &str, user: UserId) -> CoreResult<()> {
        self.mutate_role(ctx, role, |set| {
            set.insert(user);
        })
    }

    /// Removes a member from a scoped role, emitting a change event.
    pub fn remove_role_member(&self, ctx: ContextId, role: &str, user: UserId) -> CoreResult<()> {
        self.mutate_role(ctx, role, |set| {
            set.remove(&user);
        })
    }

    fn mutate_role(
        &self,
        ctx: ContextId,
        role: &str,
        f: impl FnOnce(&mut BTreeSet<UserId>),
    ) -> CoreResult<()> {
        let ev = {
            let mut g = self.contexts.write();
            let c = live_mut(&mut g, ctx)?;
            let set = c
                .roles
                .get_mut(role)
                .ok_or_else(|| CoreError::UnknownScopedRole {
                    context: ctx,
                    name: role.to_owned(),
                })?;
            let old = set.clone();
            f(set);
            let new = set.clone();
            role_change_event(self.clock.now(), c, role, Some(&old), &new)
        };
        self.emit(ev);
        Ok(())
    }

    /// Resolves a scoped role to its current members — **only while the scope
    /// is live** (§4: a scoped role's lifetime is restricted to its scope's).
    pub fn resolve_role(&self, ctx: ContextId, role: &str) -> CoreResult<Vec<UserId>> {
        let g = self.contexts.read();
        let c = g.get(&ctx).ok_or(CoreError::UnknownContext(ctx))?;
        if !c.alive {
            return Err(CoreError::ScopeEnded(ctx));
        }
        c.roles
            .get(role)
            .map(|s| s.iter().copied().collect())
            .ok_or_else(|| CoreError::UnknownScopedRole {
                context: ctx,
                name: role.to_owned(),
            })
    }

    /// True if `user` currently plays the scoped role (false once the scope
    /// has ended).
    pub fn plays_scoped(&self, ctx: ContextId, role: &str, user: UserId) -> bool {
        self.resolve_role(ctx, role)
            .map(|m| m.contains(&user))
            .unwrap_or(false)
    }

    /// Names of the scoped roles declared in the context.
    pub fn role_names(&self, ctx: ContextId) -> CoreResult<Vec<String>> {
        let g = self.contexts.read();
        let c = g.get(&ctx).ok_or(CoreError::UnknownContext(ctx))?;
        Ok(c.roles.keys().cloned().collect())
    }

    /// Finds the most recently created *live* context with the given name
    /// attached to the given process instance. This is how runtime components
    /// turn a schema-level context name (e.g. `TaskForceContext`) into a
    /// context reference.
    pub fn find(&self, name: &str, process: ProcessInstanceId) -> Option<ContextId> {
        let g = self.contexts.read();
        g.values()
            .rev()
            .find(|c| {
                c.alive && c.name == name && c.processes.iter().any(|(_, pi)| *pi == process)
            })
            .map(|c| c.id)
    }

    /// Finds the most recently created live context with the given name,
    /// regardless of attachment.
    pub fn find_by_name(&self, name: &str) -> Option<ContextId> {
        let g = self.contexts.read();
        g.values()
            .rev()
            .find(|c| c.alive && c.name == name)
            .map(|c| c.id)
    }

    /// Number of contexts ever created.
    pub fn context_count(&self) -> usize {
        self.contexts.read().len()
    }

    /// Ids of all live contexts.
    pub fn live_contexts(&self) -> Vec<ContextId> {
        self.contexts
            .read()
            .values()
            .filter(|c| c.alive)
            .map(|c| c.id)
            .collect()
    }
}

fn live_mut(
    g: &mut BTreeMap<ContextId, ContextState>,
    ctx: ContextId,
) -> CoreResult<&mut ContextState> {
    let c = g.get_mut(&ctx).ok_or(CoreError::UnknownContext(ctx))?;
    if !c.alive {
        return Err(CoreError::ScopeEnded(ctx));
    }
    Ok(c)
}

fn role_change_event(
    time: Timestamp,
    c: &ContextState,
    role: &str,
    old: Option<&BTreeSet<UserId>>,
    new: &BTreeSet<UserId>,
) -> ContextFieldChange {
    let to_value = |s: &BTreeSet<UserId>| Value::List(s.iter().map(|&u| Value::User(u)).collect());
    ContextFieldChange {
        time,
        context_id: c.id,
        context_name: c.name.clone(),
        processes: c.process_list(),
        field_name: role.to_owned(),
        old_value: old.map(to_value),
        new_value: to_value(new),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{Duration, SimClock};
    use parking_lot::Mutex;

    fn mgr() -> (ContextManager, SimClock) {
        let clock = SimClock::new();
        (ContextManager::new(Arc::new(clock.clone())), clock)
    }

    #[test]
    fn field_set_get_and_change_event() {
        let (m, clock) = mgr();
        let seen: Arc<Mutex<Vec<ContextFieldChange>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        m.subscribe(Arc::new(move |ev| sink.lock().push(ev.clone())));

        let ctx = m.create("TaskForceContext", Some((1.into(), 10.into())));
        clock.advance(Duration::from_mins(5));
        m.set_field(ctx, "TaskForceDeadline", Value::Time(Timestamp::from_millis(99)))
            .unwrap();
        assert_eq!(
            m.get_field(ctx, "TaskForceDeadline").unwrap(),
            Value::Time(Timestamp::from_millis(99))
        );

        let evs = seen.lock();
        assert_eq!(evs.len(), 1);
        let ev = &evs[0];
        assert_eq!(ev.context_id, ctx);
        assert_eq!(ev.context_name, "TaskForceContext");
        assert_eq!(ev.field_name, "TaskForceDeadline");
        assert_eq!(ev.old_value, None);
        assert_eq!(ev.processes, vec![(1.into(), 10.into())]);
        assert_eq!(ev.time, Timestamp::from_millis(5 * 60_000));
    }

    #[test]
    fn overwriting_a_field_reports_old_value() {
        let (m, _) = mgr();
        let seen: Arc<Mutex<Vec<ContextFieldChange>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        m.subscribe(Arc::new(move |ev| sink.lock().push(ev.clone())));
        let ctx = m.create("C", None);
        m.set_field(ctx, "x", Value::Int(1)).unwrap();
        m.set_field(ctx, "x", Value::Int(2)).unwrap();
        let evs = seen.lock();
        assert_eq!(evs[1].old_value, Some(Value::Int(1)));
        assert_eq!(evs[1].new_value, Value::Int(2));
    }

    #[test]
    fn scoped_role_lifecycle_matches_scope() {
        let (m, _) = mgr();
        let ctx = m.create("InfoRequestContext", None);
        let requestor = UserId(7);
        m.create_role(ctx, "Requestor", &[requestor]).unwrap();
        assert_eq!(m.resolve_role(ctx, "Requestor").unwrap(), vec![requestor]);
        assert!(m.plays_scoped(ctx, "Requestor", requestor));

        // "The Requestor role disappears upon completion of the information
        // request process, i.e., it is a scoped role." (§5.4)
        m.destroy(ctx).unwrap();
        assert!(matches!(
            m.resolve_role(ctx, "Requestor"),
            Err(CoreError::ScopeEnded(_))
        ));
        assert!(!m.plays_scoped(ctx, "Requestor", requestor));
        // Mutation after scope end fails too.
        assert!(m.set_field(ctx, "f", Value::Int(1)).is_err());
        assert!(m.add_role_member(ctx, "Requestor", UserId(8)).is_err());
    }

    #[test]
    fn role_membership_changes_emit_context_events() {
        let (m, _) = mgr();
        let seen: Arc<Mutex<Vec<ContextFieldChange>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        m.subscribe(Arc::new(move |ev| sink.lock().push(ev.clone())));
        let ctx = m.create("TaskForceContext", None);
        m.create_role(ctx, "TaskForceMembers", &[UserId(1)]).unwrap();
        m.add_role_member(ctx, "TaskForceMembers", UserId(2)).unwrap();
        m.remove_role_member(ctx, "TaskForceMembers", UserId(1)).unwrap();
        let evs = seen.lock();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].field_name, "TaskForceMembers");
        assert_eq!(
            evs[1].new_value,
            Value::List(vec![Value::User(UserId(1)), Value::User(UserId(2))])
        );
        assert_eq!(evs[2].new_value, Value::List(vec![Value::User(UserId(2))]));
        assert_eq!(m.resolve_role(ctx, "TaskForceMembers").unwrap(), vec![UserId(2)]);
    }

    #[test]
    fn contexts_attach_to_multiple_processes() {
        let (m, _) = mgr();
        let ctx = m.create("Shared", Some((1.into(), 10.into())));
        m.attach(ctx, (2.into(), 20.into())).unwrap();
        assert_eq!(
            m.processes(ctx).unwrap(),
            vec![(1.into(), 10.into()), (2.into(), 20.into())]
        );
        // Subsequent events carry both associations (§5.1.1's tuple set).
        let seen: Arc<Mutex<Vec<ContextFieldChange>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = seen.clone();
        m.subscribe(Arc::new(move |ev| sink.lock().push(ev.clone())));
        m.set_field(ctx, "k", Value::Int(0)).unwrap();
        assert_eq!(seen.lock()[0].processes.len(), 2);
    }

    #[test]
    fn find_locates_live_context_by_name_and_process() {
        let (m, _) = mgr();
        let p: ProcessInstanceId = 44.into();
        let a = m.create("C", Some((1.into(), p)));
        assert_eq!(m.find("C", p), Some(a));
        let b = m.create("C", Some((1.into(), p)));
        assert_eq!(m.find("C", p), Some(b), "most recent live context wins");
        m.destroy(b).unwrap();
        assert_eq!(m.find("C", p), Some(a), "dead contexts are skipped");
        assert_eq!(m.find("C", 999.into()), None);
        assert_eq!(m.find_by_name("C"), Some(a));
    }

    #[test]
    fn duplicate_role_or_field_name_rejected() {
        let (m, _) = mgr();
        let ctx = m.create("C", None);
        m.create_role(ctx, "R", &[]).unwrap();
        assert!(matches!(
            m.create_role(ctx, "R", &[]),
            Err(CoreError::DuplicateName(_))
        ));
        m.set_field(ctx, "F", Value::Int(1)).unwrap();
        assert!(matches!(
            m.create_role(ctx, "F", &[]),
            Err(CoreError::DuplicateName(_))
        ));
    }

    #[test]
    fn unknown_context_and_field_errors() {
        let (m, _) = mgr();
        assert!(matches!(
            m.get_field(ContextId(9), "x"),
            Err(CoreError::UnknownContext(_))
        ));
        let ctx = m.create("C", None);
        assert!(matches!(
            m.get_field(ctx, "x"),
            Err(CoreError::UnknownContextField { .. })
        ));
        assert!(matches!(
            m.resolve_role(ctx, "nope"),
            Err(CoreError::UnknownScopedRole { .. })
        ));
    }

    #[test]
    fn reads_still_work_after_scope_end() {
        let (m, _) = mgr();
        let ctx = m.create("C", None);
        m.set_field(ctx, "x", Value::Int(3)).unwrap();
        m.destroy(ctx).unwrap();
        assert_eq!(m.get_field(ctx, "x").unwrap(), Value::Int(3));
        assert_eq!(m.field_names(ctx).unwrap(), vec!["x".to_owned()]);
    }
}
