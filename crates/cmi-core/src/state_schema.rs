//! Activity state schemas (§4, Fig. 4).
//!
//! Each activity schema carries an *activity state schema* that enumerates the
//! possible activity states and the legal state transitions. CORE restricts
//! application-specific states to **substates of already-defined states**,
//! yielding a *forest* of states whose roots are the basic states, and
//! requires that **state transitions only connect leaves** of the forest.
//!
//! A transition from one activity state to another constitutes a *primitive
//! activity event* — the raw material of awareness provisioning.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use crate::error::{CoreError, CoreResult};
use crate::ids::StateSchemaId;

/// Index of a state within its schema's state table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateRef(u32);

impl StateRef {
    /// Raw table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A single state in the forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateDef {
    name: String,
    parent: Option<StateRef>,
}

impl StateDef {
    /// The state's name (unique within its schema).
    pub fn name(&self) -> &str {
        &self.name
    }
    /// The parent state, or `None` for a basic (root) state.
    pub fn parent(&self) -> Option<StateRef> {
        self.parent
    }
}

/// Names of the generic activity states (Fig. 4), consistent with the WfMC
/// proposed standard the paper cites.
pub mod generic {
    /// Instance created but not yet eligible to run.
    pub const UNINITIALIZED: &str = "Uninitialized";
    /// Eligible to run (all inbound dependencies satisfied).
    pub const READY: &str = "Ready";
    /// Currently executing.
    pub const RUNNING: &str = "Running";
    /// Execution paused; may resume.
    pub const SUSPENDED: &str = "Suspended";
    /// Non-leaf superstate of the two final states.
    pub const CLOSED: &str = "Closed";
    /// Finished successfully (substate of `Closed`).
    pub const COMPLETED: &str = "Completed";
    /// Aborted (substate of `Closed`).
    pub const TERMINATED: &str = "Terminated";
}

/// A validated activity state schema: a forest of states plus a transition
/// relation over its leaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivityStateSchema {
    id: StateSchemaId,
    name: String,
    states: Vec<StateDef>,
    by_name: BTreeMap<String, StateRef>,
    children: Vec<Vec<StateRef>>,
    transitions: BTreeSet<(StateRef, StateRef)>,
    initial: StateRef,
    /// Designated entry leaf per refined superstate (recorded by `refine`).
    entries: BTreeMap<StateRef, StateRef>,
}

impl ActivityStateSchema {
    /// The schema's identifier.
    pub fn id(&self) -> StateSchemaId {
        self.id
    }

    /// The schema's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The generic activity state schema of Fig. 4: `Uninitialized`, `Ready`,
    /// `Running`, `Suspended` and the `Closed` superstate containing
    /// `Completed` and `Terminated`.
    pub fn generic(id: StateSchemaId) -> Arc<ActivityStateSchema> {
        use generic::*;
        let mut b = ActivityStateSchemaBuilder::new(id, "generic");
        b.add_root(UNINITIALIZED).unwrap();
        b.add_root(READY).unwrap();
        b.add_root(RUNNING).unwrap();
        b.add_root(SUSPENDED).unwrap();
        b.add_root(CLOSED).unwrap();
        b.add_substate(CLOSED, COMPLETED).unwrap();
        b.add_substate(CLOSED, TERMINATED).unwrap();
        for (from, to) in [
            (UNINITIALIZED, READY),
            (READY, RUNNING),
            (RUNNING, SUSPENDED),
            (SUSPENDED, RUNNING),
            (RUNNING, COMPLETED),
            (RUNNING, TERMINATED),
            (READY, TERMINATED),
            (SUSPENDED, TERMINATED),
        ] {
            b.add_transition(from, to).unwrap();
        }
        b.set_initial(UNINITIALIZED).unwrap();
        Arc::new(b.build().expect("generic schema is statically valid"))
    }

    /// Looks up a state by name.
    pub fn state(&self, name: &str) -> CoreResult<StateRef> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| CoreError::UnknownState(name.to_owned()))
    }

    /// Looks up a state by name, requiring it to be a leaf (i.e. an actual
    /// runtime state, not a superstate).
    pub fn leaf(&self, name: &str) -> CoreResult<StateRef> {
        let s = self.state(name)?;
        if self.is_leaf(s) {
            Ok(s)
        } else {
            Err(CoreError::NonLeafState(name.to_owned()))
        }
    }

    /// Resolves a state name to the concrete runtime leaf: a leaf resolves
    /// to itself; a refined superstate resolves (recursively) to its
    /// designated entry leaf. This is how engines written against the
    /// generic names (`Running`, …) keep working after an application-
    /// specific refinement (§4): requesting `Running` on a schema where
    /// `Running ⊃ {Gathering, Analyzing}` lands on the entry substate.
    pub fn resolve_leaf(&self, name: &str) -> CoreResult<StateRef> {
        let mut s = self.state(name)?;
        let mut hops = 0;
        while !self.is_leaf(s) {
            match self.entries.get(&s) {
                Some(e) => s = *e,
                None => return Err(CoreError::NonLeafState(name.to_owned())),
            }
            hops += 1;
            if hops > self.states.len() {
                return Err(CoreError::NonLeafState(name.to_owned()));
            }
        }
        Ok(s)
    }

    /// The designated entry leaf of a refined superstate, if recorded.
    pub fn entry_of(&self, s: StateRef) -> Option<StateRef> {
        self.entries.get(&s).copied()
    }

    /// The state's name.
    pub fn state_name(&self, s: StateRef) -> &str {
        &self.states[s.index()].name
    }

    /// The initial (leaf) state new instances start in.
    pub fn initial(&self) -> StateRef {
        self.initial
    }

    /// True if `s` has no substates.
    pub fn is_leaf(&self, s: StateRef) -> bool {
        self.children[s.index()].is_empty()
    }

    /// True if `s` is `ancestor` or a (transitive) substate of it. This is how
    /// clients ask "is the activity Closed?" when the current leaf is
    /// `Completed` or `Terminated`.
    pub fn is_within(&self, s: StateRef, ancestor: StateRef) -> bool {
        let mut cur = Some(s);
        while let Some(c) = cur {
            if c == ancestor {
                return true;
            }
            cur = self.states[c.index()].parent;
        }
        false
    }

    /// Name-based variant of [`Self::is_within`].
    pub fn is_within_named(&self, s: StateRef, ancestor: &str) -> CoreResult<bool> {
        Ok(self.is_within(s, self.state(ancestor)?))
    }

    /// True if the transition `from -> to` is declared.
    pub fn can_transition(&self, from: StateRef, to: StateRef) -> bool {
        self.transitions.contains(&(from, to))
    }

    /// Validates the transition `from -> to`, returning `to` on success.
    pub fn transition(&self, from: StateRef, to: StateRef) -> CoreResult<StateRef> {
        if self.can_transition(from, to) {
            Ok(to)
        } else {
            Err(CoreError::IllegalTransition {
                from: self.state_name(from).to_owned(),
                to: self.state_name(to).to_owned(),
            })
        }
    }

    /// A leaf is *final* when it has no outgoing transitions; an activity in a
    /// final state can never change state again.
    pub fn is_final(&self, s: StateRef) -> bool {
        self.is_leaf(s) && !self.transitions.iter().any(|&(f, _)| f == s)
    }

    /// All states, in declaration order.
    pub fn states(&self) -> impl Iterator<Item = (StateRef, &StateDef)> {
        self.states
            .iter()
            .enumerate()
            .map(|(i, d)| (StateRef(i as u32), d))
    }

    /// All leaves, in declaration order.
    pub fn leaves(&self) -> impl Iterator<Item = StateRef> + '_ {
        self.states()
            .map(|(s, _)| s)
            .filter(move |s| self.is_leaf(*s))
    }

    /// All declared transitions.
    pub fn transitions(&self) -> impl Iterator<Item = (StateRef, StateRef)> + '_ {
        self.transitions.iter().copied()
    }

    /// Direct substates of `s`.
    pub fn substates(&self, s: StateRef) -> &[StateRef] {
        &self.children[s.index()]
    }

    /// Number of states (leaves and superstates).
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True if the schema has no states (never true for built schemas).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Starts a builder seeded with this schema's states and transitions, for
    /// defining application-specific substate refinements (§4).
    pub fn extend(&self, id: StateSchemaId, name: &str) -> ActivityStateSchemaBuilder {
        ActivityStateSchemaBuilder {
            id,
            name: name.to_owned(),
            states: self.states.clone(),
            by_name: self.by_name.clone(),
            transitions: self.transitions.clone(),
            initial: Some(self.state_name(self.initial).to_owned()),
            entries: self.entries.clone(),
        }
    }
}

impl fmt::Display for ActivityStateSchema {
    /// Renders the forest and the transition diagram, reproducing the content
    /// of Fig. 4 textually.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "state schema `{}` ({})", self.name, self.id)?;
        for (s, d) in self.states() {
            if d.parent.is_none() {
                self.fmt_subtree(f, s, 1)?;
            }
        }
        writeln!(f, "  transitions:")?;
        for (from, to) in self.transitions() {
            writeln!(f, "    {} -> {}", self.state_name(from), self.state_name(to))?;
        }
        write!(f, "  initial: {}", self.state_name(self.initial))
    }
}

impl ActivityStateSchema {
    fn fmt_subtree(&self, f: &mut fmt::Formatter<'_>, s: StateRef, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        let marker = if s == self.initial {
            " (initial)"
        } else if self.is_final(s) {
            " (final)"
        } else {
            ""
        };
        writeln!(f, "{pad}{}{marker}", self.state_name(s))?;
        for &c in self.substates(s) {
            self.fmt_subtree(f, c, depth + 1)?;
        }
        Ok(())
    }
}

/// Builder for [`ActivityStateSchema`]; all structural rules are enforced at
/// `add_*` time or by [`ActivityStateSchemaBuilder::build`].
#[derive(Debug, Clone)]
pub struct ActivityStateSchemaBuilder {
    id: StateSchemaId,
    name: String,
    states: Vec<StateDef>,
    by_name: BTreeMap<String, StateRef>,
    transitions: BTreeSet<(StateRef, StateRef)>,
    initial: Option<String>,
    entries: BTreeMap<StateRef, StateRef>,
}

impl ActivityStateSchemaBuilder {
    /// An empty builder.
    pub fn new(id: StateSchemaId, name: &str) -> Self {
        ActivityStateSchemaBuilder {
            id,
            name: name.to_owned(),
            states: Vec::new(),
            by_name: BTreeMap::new(),
            transitions: BTreeSet::new(),
            initial: None,
            entries: BTreeMap::new(),
        }
    }

    fn add_state(&mut self, name: &str, parent: Option<StateRef>) -> CoreResult<StateRef> {
        if self.by_name.contains_key(name) {
            return Err(CoreError::DuplicateName(name.to_owned()));
        }
        let r = StateRef(self.states.len() as u32);
        self.states.push(StateDef {
            name: name.to_owned(),
            parent,
        });
        self.by_name.insert(name.to_owned(), r);
        Ok(r)
    }

    /// Adds a basic (root) state.
    pub fn add_root(&mut self, name: &str) -> CoreResult<StateRef> {
        self.add_state(name, None)
    }

    /// Adds an application-specific substate under `parent`. If `parent` was a
    /// leaf with declared transitions, those transitions must be re-targeted
    /// before `build` (or use [`Self::refine`], which does it automatically).
    pub fn add_substate(&mut self, parent: &str, name: &str) -> CoreResult<StateRef> {
        let p = self.lookup(parent)?;
        self.add_state(name, Some(p))
    }

    /// Declares a transition between two (eventual) leaves.
    pub fn add_transition(&mut self, from: &str, to: &str) -> CoreResult<()> {
        let f = self.lookup(from)?;
        let t = self.lookup(to)?;
        self.transitions.insert((f, t));
        Ok(())
    }

    /// Removes a transition if present.
    pub fn remove_transition(&mut self, from: &str, to: &str) -> CoreResult<()> {
        let f = self.lookup(from)?;
        let t = self.lookup(to)?;
        self.transitions.remove(&(f, t));
        Ok(())
    }

    /// Sets the initial state (must be a leaf at build time).
    pub fn set_initial(&mut self, name: &str) -> CoreResult<()> {
        self.lookup(name)?;
        self.initial = Some(name.to_owned());
        Ok(())
    }

    /// Refines leaf state `state` into the given substates (statechart-style):
    ///
    /// * each `substates[i]` becomes a child of `state`;
    /// * every transition `X -> state` is redirected to `X -> entry`;
    /// * every transition `state -> Y` is replaced by `s -> Y` for *each* new
    ///   substate `s` (any substate may exit the superstate the way the
    ///   superstate could);
    /// * if `state` was the initial state, `entry` becomes initial.
    ///
    /// Inner transitions among the substates are added separately with
    /// [`Self::add_transition`]. `entry` must be one of `substates`.
    pub fn refine(&mut self, state: &str, substates: &[&str], entry: &str) -> CoreResult<()> {
        if !substates.contains(&entry) {
            return Err(CoreError::InvalidSchema(format!(
                "refine entry `{entry}` must be one of the new substates"
            )));
        }
        let parent = self.lookup(state)?;
        let mut subs = Vec::with_capacity(substates.len());
        for s in substates {
            subs.push(self.add_substate(state, s)?);
        }
        let entry_ref = self.lookup(entry)?;
        let old: Vec<(StateRef, StateRef)> = self.transitions.iter().copied().collect();
        for (f, t) in old {
            if t == parent {
                self.transitions.remove(&(f, t));
                self.transitions.insert((f, entry_ref));
            }
            if f == parent {
                self.transitions.remove(&(f, t));
                for &s in &subs {
                    self.transitions.insert((s, t));
                }
            }
        }
        if self.initial.as_deref() == Some(state) {
            self.initial = Some(entry.to_owned());
        }
        self.entries.insert(parent, entry_ref);
        Ok(())
    }

    fn lookup(&self, name: &str) -> CoreResult<StateRef> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| CoreError::UnknownState(name.to_owned()))
    }

    /// Validates and freezes the schema. Rules enforced (per §4):
    ///
    /// 1. at least one state, and an initial state is set;
    /// 2. the initial state is a leaf;
    /// 3. every transition connects two leaves;
    /// 4. every leaf is reachable from the initial leaf (no dead states);
    /// 5. the parent relation is a forest (guaranteed by construction: a
    ///    parent always pre-exists its children, so no cycles are possible).
    pub fn build(self) -> CoreResult<ActivityStateSchema> {
        if self.states.is_empty() {
            return Err(CoreError::InvalidSchema("no states declared".into()));
        }
        let initial_name = self
            .initial
            .ok_or_else(|| CoreError::InvalidSchema("no initial state set".into()))?;
        let initial = self.by_name[&initial_name];

        let mut children: Vec<Vec<StateRef>> = vec![Vec::new(); self.states.len()];
        for (i, d) in self.states.iter().enumerate() {
            if let Some(p) = d.parent {
                children[p.index()].push(StateRef(i as u32));
            }
        }
        let is_leaf = |s: StateRef| children[s.index()].is_empty();

        if !is_leaf(initial) {
            return Err(CoreError::InvalidSchema(format!(
                "initial state `{initial_name}` is not a leaf"
            )));
        }
        for &(f, t) in &self.transitions {
            if !is_leaf(f) {
                return Err(CoreError::InvalidSchema(format!(
                    "transition source `{}` is not a leaf",
                    self.states[f.index()].name
                )));
            }
            if !is_leaf(t) {
                return Err(CoreError::InvalidSchema(format!(
                    "transition target `{}` is not a leaf",
                    self.states[t.index()].name
                )));
            }
        }

        // Reachability of every leaf from the initial leaf.
        let mut reached = vec![false; self.states.len()];
        let mut stack = vec![initial];
        reached[initial.index()] = true;
        while let Some(s) = stack.pop() {
            for &(f, t) in &self.transitions {
                if f == s && !reached[t.index()] {
                    reached[t.index()] = true;
                    stack.push(t);
                }
            }
        }
        for (i, d) in self.states.iter().enumerate() {
            if children[i].is_empty() && !reached[i] {
                return Err(CoreError::InvalidSchema(format!(
                    "leaf state `{}` is unreachable from the initial state",
                    d.name
                )));
            }
        }

        Ok(ActivityStateSchema {
            id: self.id,
            name: self.name,
            states: self.states,
            by_name: self.by_name,
            children,
            transitions: self.transitions,
            initial,
            entries: self.entries,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::generic::*;
    use super::*;

    fn gen() -> Arc<ActivityStateSchema> {
        ActivityStateSchema::generic(StateSchemaId(1))
    }

    #[test]
    fn generic_schema_matches_figure_4() {
        let s = gen();
        assert_eq!(s.len(), 7);
        // Closed is a non-leaf superstate of Completed and Terminated.
        let closed = s.state(CLOSED).unwrap();
        assert!(!s.is_leaf(closed));
        let completed = s.leaf(COMPLETED).unwrap();
        let terminated = s.leaf(TERMINATED).unwrap();
        assert!(s.is_within(completed, closed));
        assert!(s.is_within(terminated, closed));
        assert!(s.is_within_named(completed, CLOSED).unwrap());
        // Both final states really are final.
        assert!(s.is_final(completed));
        assert!(s.is_final(terminated));
        // Initial is Uninitialized.
        assert_eq!(s.state_name(s.initial()), UNINITIALIZED);
    }

    #[test]
    fn generic_transition_relation() {
        let s = gen();
        let get = |n: &str| s.leaf(n).unwrap();
        assert!(s.can_transition(get(UNINITIALIZED), get(READY)));
        assert!(s.can_transition(get(READY), get(RUNNING)));
        assert!(s.can_transition(get(RUNNING), get(SUSPENDED)));
        assert!(s.can_transition(get(SUSPENDED), get(RUNNING)));
        assert!(s.can_transition(get(RUNNING), get(COMPLETED)));
        assert!(s.can_transition(get(SUSPENDED), get(TERMINATED)));
        // Forbidden examples.
        assert!(!s.can_transition(get(UNINITIALIZED), get(RUNNING)));
        assert!(!s.can_transition(get(COMPLETED), get(READY)));
        let err = s.transition(get(COMPLETED), get(READY)).unwrap_err();
        assert!(matches!(err, CoreError::IllegalTransition { .. }));
    }

    #[test]
    fn transitions_to_non_leaf_are_rejected_at_lookup() {
        let s = gen();
        assert!(matches!(s.leaf(CLOSED), Err(CoreError::NonLeafState(_))));
    }

    #[test]
    fn builder_rejects_transition_touching_superstate() {
        let mut b = ActivityStateSchemaBuilder::new(StateSchemaId(2), "bad");
        b.add_root("A").unwrap();
        b.add_root("B").unwrap();
        b.add_substate("B", "B1").unwrap();
        b.add_transition("A", "B").unwrap(); // B is now a superstate
        b.set_initial("A").unwrap();
        let err = b.build().unwrap_err();
        assert!(matches!(err, CoreError::InvalidSchema(_)));
    }

    #[test]
    fn builder_rejects_unreachable_leaf() {
        let mut b = ActivityStateSchemaBuilder::new(StateSchemaId(3), "dead");
        b.add_root("A").unwrap();
        b.add_root("B").unwrap();
        b.set_initial("A").unwrap();
        let err = b.build().unwrap_err();
        assert!(err.to_string().contains("unreachable"));
    }

    #[test]
    fn builder_rejects_duplicate_names_and_missing_initial() {
        let mut b = ActivityStateSchemaBuilder::new(StateSchemaId(4), "dup");
        b.add_root("A").unwrap();
        assert!(matches!(b.add_root("A"), Err(CoreError::DuplicateName(_))));
        let b2 = {
            let mut b = ActivityStateSchemaBuilder::new(StateSchemaId(5), "noinit");
            b.add_root("A").unwrap();
            b
        };
        assert!(b2.build().is_err());
    }

    #[test]
    fn refine_redirects_transitions_statechart_style() {
        // Application-specific extension from §4: precise modeling by
        // splitting Running into Gathering and Analyzing.
        let s = gen();
        let mut b = s.extend(StateSchemaId(9), "epidemic-activity");
        b.refine(RUNNING, &["Gathering", "Analyzing"], "Gathering")
            .unwrap();
        b.add_transition("Gathering", "Analyzing").unwrap();
        let e = b.build().unwrap();

        let ready = e.leaf(READY).unwrap();
        let gathering = e.leaf("Gathering").unwrap();
        let analyzing = e.leaf("Analyzing").unwrap();
        let completed = e.leaf(COMPLETED).unwrap();
        let running = e.state(RUNNING).unwrap();

        // Running is no longer a leaf; entry lands on Gathering.
        assert!(!e.is_leaf(running));
        assert!(e.can_transition(ready, gathering));
        assert!(!e.can_transition(ready, analyzing));
        // Both substates may exit as Running could.
        assert!(e.can_transition(gathering, completed));
        assert!(e.can_transition(analyzing, completed));
        // Substate containment works through the new level.
        assert!(e.is_within(gathering, running));
        // The original generic schema is untouched.
        assert!(s.is_leaf(s.state(RUNNING).unwrap()));
    }

    #[test]
    fn refine_moves_initial_when_refining_initial_state() {
        let mut b = ActivityStateSchemaBuilder::new(StateSchemaId(11), "init-refine");
        b.add_root("S").unwrap();
        b.add_root("T").unwrap();
        b.add_transition("S", "T").unwrap();
        b.set_initial("S").unwrap();
        b.refine("S", &["S1", "S2"], "S1").unwrap();
        b.add_transition("S1", "S2").unwrap();
        let e = b.build().unwrap();
        assert_eq!(e.state_name(e.initial()), "S1");
        // S -> T became S1 -> T and S2 -> T.
        let t = e.leaf("T").unwrap();
        assert!(e.can_transition(e.leaf("S1").unwrap(), t));
        assert!(e.can_transition(e.leaf("S2").unwrap(), t));
    }

    #[test]
    fn refine_requires_entry_among_substates() {
        let s = gen();
        let mut b = s.extend(StateSchemaId(12), "bad-entry");
        let err = b.refine(RUNNING, &["X"], "Y").unwrap_err();
        assert!(matches!(err, CoreError::InvalidSchema(_)));
    }

    #[test]
    fn resolve_leaf_follows_refinement_entries() {
        let s = gen();
        // Leaves resolve to themselves; unrefined superstates have no entry.
        assert_eq!(s.resolve_leaf(READY).unwrap(), s.leaf(READY).unwrap());
        assert!(matches!(s.resolve_leaf(CLOSED), Err(CoreError::NonLeafState(_))));
        assert!(s.entry_of(s.state(CLOSED).unwrap()).is_none());

        // After refinement, the superstate name resolves to its entry leaf —
        // including through nested refinements.
        let mut b = s.extend(StateSchemaId(30), "nested");
        b.refine(RUNNING, &["Gathering", "Analyzing"], "Gathering").unwrap();
        b.add_transition("Gathering", "Analyzing").unwrap();
        b.refine("Gathering", &["Setup", "Sampling"], "Setup").unwrap();
        b.add_transition("Setup", "Sampling").unwrap();
        let e = b.build().unwrap();
        assert_eq!(e.state_name(e.resolve_leaf(RUNNING).unwrap()), "Setup");
        assert_eq!(e.state_name(e.resolve_leaf("Gathering").unwrap()), "Setup");
        assert_eq!(e.state_name(e.resolve_leaf("Sampling").unwrap()), "Sampling");
        assert_eq!(
            e.entry_of(e.state(RUNNING).unwrap()),
            Some(e.state("Gathering").unwrap())
        );
    }

    #[test]
    fn display_renders_forest_and_transitions() {
        let s = gen();
        let out = s.to_string();
        assert!(out.contains("Closed"));
        assert!(out.contains("  transitions:"));
        assert!(out.contains("Uninitialized (initial)"));
        assert!(out.contains("Completed (final)"));
        assert!(out.contains("Running -> Suspended"));
    }

    #[test]
    fn leaves_iterator_skips_superstates() {
        let s = gen();
        let leaves: Vec<&str> = s.leaves().map(|l| s.state_name(l)).collect();
        assert_eq!(
            leaves,
            vec![UNINITIALIZED, READY, RUNNING, SUSPENDED, COMPLETED, TERMINATED]
        );
    }
}
