//! The enactment engine — the Coordination Model's operations plus the WfMS
//! substrate CMI layered over IBM FlowMark (§3, §6.1).
//!
//! CORE defines *which* state transitions are legal; the Coordination Model
//! "enhances CORE's activities and activity states with operations that cause
//! state transitions". This engine provides those operations (`start`,
//! `complete`, `suspend`, `resume`, `terminate`), evaluates the fixed
//! dependency types to decide which activity variables become `Ready`,
//! invokes subprocesses, runs basic activity scripts on state entry, and
//! enforces deadline dependencies against the scenario clock.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use cmi_core::context::ContextManager;
use cmi_core::ids::{
    ActivityInstanceId, ActivitySchemaId, ActivityVarId, ProcessInstanceId, UserId,
};
use cmi_core::instance::InstanceStore;
use cmi_core::participant::Directory;
use cmi_core::schema::{ActivitySchema, Dependency};
use cmi_core::state_schema::generic;
use cmi_core::time::Clock;
use cmi_core::value::Value;

use crate::error::{CoordError, CoordResult};
use crate::scripts::ActivityScript;

/// A dependency status change — the third class of awareness event the
/// paper lists (§5: "activity state changes, resource status events, and
/// dependency status changes"). Emitted when routing finds a dependency's
/// condition newly satisfied and enables its target variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DependencyStatusChange {
    /// When the dependency fired.
    pub time: cmi_core::time::Timestamp,
    /// The process schema whose dependency fired.
    pub process_schema: ActivitySchemaId,
    /// The process instance it fired in.
    pub process_instance: ProcessInstanceId,
    /// The dependency type (`sequence`, `and-join`, `or-join`, `guard`,
    /// `deadline`, or `initial` for variables with no inbound dependency).
    pub dependency_type: &'static str,
    /// The enabled target variable.
    pub target: ActivityVarId,
    /// The target variable's name.
    pub target_name: String,
}

/// Callback invoked synchronously when a dependency fires.
pub type DependencyListener = Arc<dyn Fn(&DependencyStatusChange) + Send + Sync>;

/// Engine behaviour knobs.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Automatically transition subprocess instances `Ready -> Running` and
    /// spawn their children (the usual WfMS behaviour). Basic activities are
    /// never auto-started: a participant (or program) starts them.
    pub auto_start_subprocesses: bool,
    /// Automatically complete a process once all its required activity
    /// variables have completed and nothing is still open.
    pub auto_complete_processes: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            auto_start_subprocesses: true,
            auto_complete_processes: true,
        }
    }
}

/// The coordination/enactment engine.
pub struct EnactmentEngine {
    store: Arc<InstanceStore>,
    contexts: Arc<ContextManager>,
    directory: Arc<Directory>,
    clock: Arc<dyn Clock>,
    config: EngineConfig,
    /// Scripts keyed by (activity schema, entered state).
    scripts: RwLock<BTreeMap<(ActivitySchemaId, String), Vec<ActivityScript>>>,
    dep_listeners: RwLock<Vec<DependencyListener>>,
}

impl fmt::Debug for EnactmentEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EnactmentEngine")
            .field("instances", &self.store.instance_count())
            .finish()
    }
}

impl EnactmentEngine {
    /// An engine over the given stores.
    pub fn new(
        store: Arc<InstanceStore>,
        contexts: Arc<ContextManager>,
        directory: Arc<Directory>,
        clock: Arc<dyn Clock>,
        config: EngineConfig,
    ) -> Self {
        EnactmentEngine {
            store,
            contexts,
            directory,
            clock,
            config,
            scripts: RwLock::new(BTreeMap::new()),
            dep_listeners: RwLock::new(Vec::new()),
        }
    }

    /// Registers a listener for dependency status changes.
    pub fn subscribe_dependencies(&self, l: DependencyListener) {
        self.dep_listeners.write().push(l);
    }

    fn emit_dependency(&self, change: DependencyStatusChange) {
        let listeners = self.dep_listeners.read();
        for l in listeners.iter() {
            l(&change);
        }
    }

    /// The instance store the engine drives.
    pub fn store(&self) -> &Arc<InstanceStore> {
        &self.store
    }
    /// The context store.
    pub fn contexts(&self) -> &Arc<ContextManager> {
        &self.contexts
    }
    /// The participant directory.
    pub fn directory(&self) -> &Arc<Directory> {
        &self.directory
    }
    /// The scenario clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Registers a basic activity script to run whenever an instance of
    /// `schema` enters `state`.
    pub fn register_script(&self, schema: ActivitySchemaId, state: &str, script: ActivityScript) {
        self.scripts
            .write()
            .entry((schema, state.to_owned()))
            .or_default()
            .push(script);
    }

    /// Number of registered scripts (the §7 inventory).
    pub fn script_count(&self) -> usize {
        self.scripts.read().values().map(Vec::len).sum()
    }

    /// Starts a top-level process: creates the instance, moves it `Ready`
    /// then `Running` (running its entry scripts), and enables its initial
    /// activity variables.
    pub fn start_process(
        &self,
        schema: ActivitySchemaId,
        user: Option<UserId>,
    ) -> CoordResult<ProcessInstanceId> {
        let pi = self.store.create_top_level(schema)?;
        self.transition(pi, generic::READY, user)?;
        self.transition(pi, generic::RUNNING, user)?;
        self.route(pi)?;
        Ok(pi)
    }

    /// Starts a `Ready` activity: `Ready -> Running`, attributing and
    /// assigning `user` as performer. For subprocesses this also enables
    /// their initial variables.
    pub fn start_activity(
        &self,
        instance: ActivityInstanceId,
        user: Option<UserId>,
    ) -> CoordResult<()> {
        self.expect_state(instance, generic::READY, "Ready")?;
        if let Some(u) = user {
            self.store.set_performer(instance, u)?;
        }
        self.transition(instance, generic::RUNNING, user)?;
        if self.store.schema_of(instance)?.is_process() {
            self.route(instance)?;
        }
        Ok(())
    }

    /// Completes a `Running` activity and routes its parent: dependent
    /// variables may become `Ready`, and the parent may auto-complete.
    pub fn complete_activity(
        &self,
        instance: ActivityInstanceId,
        user: Option<UserId>,
    ) -> CoordResult<()> {
        self.expect_state(instance, generic::RUNNING, "Running")?;
        self.transition(instance, generic::COMPLETED, user)?;
        self.after_close(instance, user)
    }

    /// Suspends a `Running` activity.
    pub fn suspend_activity(
        &self,
        instance: ActivityInstanceId,
        user: Option<UserId>,
    ) -> CoordResult<()> {
        self.expect_state(instance, generic::RUNNING, "Running")?;
        self.transition(instance, generic::SUSPENDED, user)
    }

    /// Resumes a `Suspended` activity.
    pub fn resume_activity(
        &self,
        instance: ActivityInstanceId,
        user: Option<UserId>,
    ) -> CoordResult<()> {
        self.expect_state(instance, generic::SUSPENDED, "Suspended")?;
        self.transition(instance, generic::RUNNING, user)
    }

    /// Moves a running activity between application-specific substates (§4's
    /// refinements), e.g. `Gathering -> Analyzing`. Any legal leaf-to-leaf
    /// transition is accepted; state-entry scripts run as usual.
    pub fn advance_state(
        &self,
        instance: ActivityInstanceId,
        to_state: &str,
        user: Option<UserId>,
    ) -> CoordResult<()> {
        self.transition(instance, to_state, user)
    }

    /// Terminates an open activity (from `Ready`, `Running` or `Suspended`),
    /// then routes the parent like any closure.
    pub fn terminate_activity(
        &self,
        instance: ActivityInstanceId,
        user: Option<UserId>,
    ) -> CoordResult<()> {
        self.transition(instance, generic::TERMINATED, user)?;
        self.after_close(instance, user)
    }

    /// Starts an **optional** activity variable on demand (Fig. 1's lab
    /// tests / local expertise): creates an instance and moves it `Ready`.
    /// Returns the new instance, which a participant then claims and starts.
    pub fn start_optional(
        &self,
        parent: ProcessInstanceId,
        var_name: &str,
        user: Option<UserId>,
    ) -> CoordResult<ActivityInstanceId> {
        let schema = self.store.schema_of(parent)?;
        let var = schema.activity_var(var_name)?;
        if !var.optional {
            return Err(CoordError::NotOptional(var_name.to_owned()));
        }
        let child = self.store.create_subactivity(parent, var.id)?;
        self.transition(child, generic::READY, user)?;
        if self.config.auto_start_subprocesses && self.store.schema_of(child)?.is_process() {
            self.start_activity(child, user)?;
        }
        Ok(child)
    }

    /// Terminates every open deadline-bound activity whose deadline (a
    /// `Time`-valued context field, per the `Deadline` dependency) has
    /// passed. Returns the terminated instances. Call after advancing the
    /// scenario clock.
    pub fn enforce_deadlines(&self) -> CoordResult<Vec<ActivityInstanceId>> {
        let now = self.clock.now();
        let mut terminated = Vec::new();
        for pi in self.store.all_instances() {
            let schema = match self.store.schema_of(pi) {
                Ok(s) if s.is_process() => s,
                _ => continue,
            };
            if self.store.is_closed(pi)? {
                continue;
            }
            for dep in schema.dependencies() {
                let Dependency::Deadline {
                    target,
                    context_name,
                    field,
                } = dep
                else {
                    continue;
                };
                let Some(ctx) = self.contexts.find(context_name, pi) else {
                    continue;
                };
                let Ok(v) = self.contexts.get_field(ctx, field) else {
                    continue;
                };
                let Some(deadline) = v.as_time() else {
                    continue;
                };
                if now <= deadline {
                    continue;
                }
                if let Some(child) = self.store.child_for_var(pi, *target)? {
                    if !self.store.is_closed(child)? {
                        self.terminate_activity(child, None)?;
                        terminated.push(child);
                    }
                }
            }
        }
        Ok(terminated)
    }

    /// Re-evaluates the dependencies of a process instance, enabling any
    /// newly satisfied activity variables. Called automatically after every
    /// closure; callers may invoke it after context changes that affect
    /// `Guard` dependencies.
    pub fn route(&self, pi: ProcessInstanceId) -> CoordResult<()> {
        let schema = self.store.schema_of(pi)?;
        if !schema.is_process() || !self.store.is_within(pi, generic::RUNNING)? {
            return Ok(());
        }
        for var in schema.activity_vars() {
            if var.optional {
                continue;
            }
            // Skip variables whose instance already left Uninitialized.
            if let Some(child) = self.store.child_for_var(pi, var.id)? {
                if !self.store.is_within(child, generic::UNINITIALIZED)? {
                    continue;
                }
            }
            if !self.flow_enabled(&schema, pi, var.id)? || !self.guards_hold(&schema, pi, var.id)?
            {
                continue;
            }
            let child = match self.store.child_for_var(pi, var.id)? {
                Some(c) => c,
                None => self.store.create_subactivity(pi, var.id)?,
            };
            // The dependency whose satisfaction enabled the variable: the
            // last flow dependency targeting it, a guard if only guards, or
            // `initial` when nothing targets it.
            let dep_type = schema
                .dependencies()
                .iter()
                .filter(|d| d.target() == var.id)
                .map(|d| d.type_name())
                .find(|t| matches!(*t, "sequence" | "and-join" | "or-join"))
                .or_else(|| {
                    schema
                        .dependencies()
                        .iter()
                        .filter(|d| d.target() == var.id)
                        .map(|d| d.type_name())
                        .next()
                })
                .unwrap_or("initial");
            self.emit_dependency(DependencyStatusChange {
                time: self.clock.now(),
                process_schema: schema.id(),
                process_instance: pi,
                dependency_type: dep_type,
                target: var.id,
                target_name: var.name.clone(),
            });
            self.transition(child, generic::READY, None)?;
            if self.config.auto_start_subprocesses && self.store.schema_of(child)?.is_process() {
                self.start_activity(child, None)?;
            }
        }
        Ok(())
    }

    fn after_close(
        &self,
        instance: ActivityInstanceId,
        user: Option<UserId>,
    ) -> CoordResult<()> {
        let snap = self.store.snapshot(instance)?;
        if let Some((_, parent)) = snap.parent {
            self.route(parent)?;
            self.maybe_complete(parent, user)?;
        }
        Ok(())
    }

    fn maybe_complete(&self, pi: ProcessInstanceId, user: Option<UserId>) -> CoordResult<()> {
        if !self.config.auto_complete_processes {
            return Ok(());
        }
        let schema = self.store.schema_of(pi)?;
        if !schema.is_process() || !self.store.is_within(pi, generic::RUNNING)? {
            return Ok(());
        }
        // Every required variable must have a Completed instance...
        for var in schema.activity_vars() {
            if var.optional {
                continue;
            }
            match self.store.child_for_var(pi, var.id)? {
                Some(c) if self.store.is_within(c, generic::COMPLETED)? => {}
                _ => return Ok(()),
            }
        }
        // ...and nothing (required or optional) may still be open.
        let snap = self.store.snapshot(pi)?;
        for c in snap.children {
            if !self.store.is_closed(c)? {
                return Ok(());
            }
        }
        self.transition(pi, generic::COMPLETED, user)?;
        self.after_close(pi, user)
    }

    fn flow_enabled(
        &self,
        schema: &ActivitySchema,
        pi: ProcessInstanceId,
        var: ActivityVarId,
    ) -> CoordResult<bool> {
        let mut has_flow_dep = false;
        let mut enabled = true;
        for dep in schema.dependencies() {
            if dep.target() != var || dep.sources().is_empty() {
                continue;
            }
            has_flow_dep = true;
            let ok = match dep {
                Dependency::Sequence { from, .. } => self.var_completed(pi, *from)?,
                Dependency::AndJoin { sources, .. } => {
                    let mut all = true;
                    for s in sources {
                        all &= self.var_completed(pi, *s)?;
                    }
                    all
                }
                Dependency::OrJoin { sources, .. } => {
                    let mut any = false;
                    for s in sources {
                        any |= self.var_completed(pi, *s)?;
                    }
                    any
                }
                _ => true,
            };
            enabled &= ok;
        }
        // Variables without inbound flow edges are initial: enabled at start.
        Ok(!has_flow_dep || enabled)
    }

    fn guards_hold(
        &self,
        schema: &ActivitySchema,
        pi: ProcessInstanceId,
        var: ActivityVarId,
    ) -> CoordResult<bool> {
        for dep in schema.dependencies() {
            let Dependency::Guard {
                target,
                context_name,
                field,
                expect,
            } = dep
            else {
                continue;
            };
            if *target != var {
                continue;
            }
            let actual: Option<Value> = self
                .contexts
                .find(context_name, pi)
                .and_then(|c| self.contexts.get_field(c, field).ok());
            if actual.as_ref() != Some(expect) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn var_completed(&self, pi: ProcessInstanceId, var: ActivityVarId) -> CoordResult<bool> {
        Ok(match self.store.child_for_var(pi, var)? {
            Some(c) => self.store.is_within(c, generic::COMPLETED)?,
            None => false,
        })
    }

    fn expect_state(
        &self,
        instance: ActivityInstanceId,
        state: &str,
        needed: &'static str,
    ) -> CoordResult<()> {
        // Superstate-aware: an instance in `Gathering` (a refinement of
        // `Running`) satisfies an expectation of `Running`.
        if !self.store.is_within(instance, state).unwrap_or(false) {
            return Err(CoordError::WrongState {
                instance,
                state: self.store.state_of(instance)?,
                needed,
            });
        }
        Ok(())
    }

    /// Applies a transition and runs any scripts registered for the entered
    /// state.
    fn transition(
        &self,
        instance: ActivityInstanceId,
        to: &str,
        user: Option<UserId>,
    ) -> CoordResult<()> {
        let ev = self.store.transition(instance, to, user)?;
        let schema = self.store.schema_of(instance)?;
        let scripts = {
            let g = self.scripts.read();
            g.get(&(schema.id(), ev.new_state.clone())).cloned()
        };
        if let Some(scripts) = scripts {
            for s in &scripts {
                s.run(
                    &self.contexts,
                    &self.directory,
                    self.clock.as_ref(),
                    (schema.id(), instance),
                    user,
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scripts::{ScriptAction, ScriptValue};
    use cmi_core::repository::SchemaRepository;
    use cmi_core::schema::ActivitySchemaBuilder;
    use cmi_core::state_schema::ActivityStateSchema;
    use cmi_core::time::{Duration, SimClock};

    struct Fixture {
        engine: EnactmentEngine,
        repo: Arc<SchemaRepository>,
        clock: SimClock,
    }

    fn fixture() -> Fixture {
        let clock = SimClock::new();
        let repo = Arc::new(SchemaRepository::new());
        let store = Arc::new(InstanceStore::new(Arc::new(clock.clone()), repo.clone()));
        let contexts = Arc::new(ContextManager::new(Arc::new(clock.clone())));
        let directory = Arc::new(Directory::new());
        let engine = EnactmentEngine::new(
            store,
            contexts,
            directory,
            Arc::new(clock.clone()),
            EngineConfig::default(),
        );
        Fixture { engine, repo, clock }
    }

    fn basic(repo: &SchemaRepository, name: &str) -> ActivitySchemaId {
        let ss = repo
            .register_state_schema(ActivityStateSchema::generic(repo.fresh_state_schema_id()));
        let id = repo.fresh_activity_schema_id();
        repo.register_activity_schema(
            ActivitySchemaBuilder::basic(id, name, ss).build().unwrap(),
        );
        id
    }

    #[test]
    fn sequential_process_runs_to_completion() {
        let f = fixture();
        let a = basic(&f.repo, "A");
        let b = basic(&f.repo, "B");
        let ss = f
            .repo
            .register_state_schema(ActivityStateSchema::generic(f.repo.fresh_state_schema_id()));
        let pid = f.repo.fresh_activity_schema_id();
        let mut pb = ActivitySchemaBuilder::process(pid, "P", ss);
        let va = pb.activity_var("a", a, false).unwrap();
        let vb = pb.activity_var("b", b, false).unwrap();
        pb.sequence(va, vb);
        f.repo.register_activity_schema(pb.build().unwrap());

        let pi = f.engine.start_process(pid, None).unwrap();
        let store = f.engine.store();
        // a is Ready, b not yet created.
        let ia = store.child_for_var(pi, va).unwrap().unwrap();
        assert_eq!(store.state_of(ia).unwrap(), generic::READY);
        assert!(store.child_for_var(pi, vb).unwrap().is_none());

        f.engine.start_activity(ia, Some(UserId(1))).unwrap();
        f.engine.complete_activity(ia, Some(UserId(1))).unwrap();
        // b now Ready.
        let ib = store.child_for_var(pi, vb).unwrap().unwrap();
        assert_eq!(store.state_of(ib).unwrap(), generic::READY);
        assert_eq!(store.state_of(pi).unwrap(), generic::RUNNING);

        f.engine.start_activity(ib, None).unwrap();
        f.engine.complete_activity(ib, None).unwrap();
        // Parent auto-completes.
        assert_eq!(store.state_of(pi).unwrap(), generic::COMPLETED);
    }

    #[test]
    fn and_join_waits_for_all_sources() {
        let f = fixture();
        let a = basic(&f.repo, "A");
        let b = basic(&f.repo, "B");
        let c = basic(&f.repo, "C");
        let ss = f
            .repo
            .register_state_schema(ActivityStateSchema::generic(f.repo.fresh_state_schema_id()));
        let pid = f.repo.fresh_activity_schema_id();
        let mut pb = ActivitySchemaBuilder::process(pid, "P", ss);
        let va = pb.activity_var("a", a, false).unwrap();
        let vb = pb.activity_var("b", b, false).unwrap();
        let vc = pb.activity_var("c", c, false).unwrap();
        pb.dependency(Dependency::AndJoin {
            sources: vec![va, vb],
            target: vc,
        });
        f.repo.register_activity_schema(pb.build().unwrap());

        let pi = f.engine.start_process(pid, None).unwrap();
        let store = f.engine.store();
        let ia = store.child_for_var(pi, va).unwrap().unwrap();
        let ib = store.child_for_var(pi, vb).unwrap().unwrap();
        f.engine.start_activity(ia, None).unwrap();
        f.engine.complete_activity(ia, None).unwrap();
        assert!(store.child_for_var(pi, vc).unwrap().is_none(), "b still open");
        f.engine.start_activity(ib, None).unwrap();
        f.engine.complete_activity(ib, None).unwrap();
        let ic = store.child_for_var(pi, vc).unwrap().unwrap();
        assert_eq!(store.state_of(ic).unwrap(), generic::READY);
    }

    #[test]
    fn or_join_fires_on_first_source() {
        let f = fixture();
        let a = basic(&f.repo, "A");
        let b = basic(&f.repo, "B");
        let c = basic(&f.repo, "C");
        let ss = f
            .repo
            .register_state_schema(ActivityStateSchema::generic(f.repo.fresh_state_schema_id()));
        let pid = f.repo.fresh_activity_schema_id();
        let mut pb = ActivitySchemaBuilder::process(pid, "P", ss);
        let va = pb.activity_var("a", a, false).unwrap();
        let vb = pb.activity_var("b", b, false).unwrap();
        let vc = pb.activity_var("c", c, false).unwrap();
        pb.dependency(Dependency::OrJoin {
            sources: vec![va, vb],
            target: vc,
        });
        f.repo.register_activity_schema(pb.build().unwrap());

        let pi = f.engine.start_process(pid, None).unwrap();
        let store = f.engine.store();
        let ia = store.child_for_var(pi, va).unwrap().unwrap();
        f.engine.start_activity(ia, None).unwrap();
        f.engine.complete_activity(ia, None).unwrap();
        assert!(store.child_for_var(pi, vc).unwrap().is_some());
    }

    #[test]
    fn guard_blocks_until_context_field_matches() {
        let f = fixture();
        let a = basic(&f.repo, "A");
        let b = basic(&f.repo, "B");
        let ss = f
            .repo
            .register_state_schema(ActivityStateSchema::generic(f.repo.fresh_state_schema_id()));
        let pid = f.repo.fresh_activity_schema_id();
        let mut pb = ActivitySchemaBuilder::process(pid, "P", ss);
        let va = pb.activity_var("a", a, false).unwrap();
        let vb = pb.activity_var("b", b, false).unwrap();
        pb.sequence(va, vb);
        pb.dependency(Dependency::Guard {
            target: vb,
            context_name: "Ctx".into(),
            field: "approved".into(),
            expect: Value::Bool(true),
        });
        f.repo.register_activity_schema(pb.build().unwrap());
        f.engine.register_script(
            pid,
            generic::RUNNING,
            ActivityScript::new(
                "init",
                vec![
                    ScriptAction::CreateContext { name: "Ctx".into() },
                    ScriptAction::SetField {
                        context: "Ctx".into(),
                        field: "approved".into(),
                        value: ScriptValue::Lit(Value::Bool(false)),
                    },
                ],
            ),
        );

        let pi = f.engine.start_process(pid, None).unwrap();
        let store = f.engine.store();
        let ia = store.child_for_var(pi, va).unwrap().unwrap();
        f.engine.start_activity(ia, None).unwrap();
        f.engine.complete_activity(ia, None).unwrap();
        assert!(
            store.child_for_var(pi, vb).unwrap().is_none(),
            "guard holds b back"
        );
        // Approve and re-route.
        let ctx = f.engine.contexts().find("Ctx", pi).unwrap();
        f.engine
            .contexts()
            .set_field(ctx, "approved", Value::Bool(true))
            .unwrap();
        f.engine.route(pi).unwrap();
        assert!(store.child_for_var(pi, vb).unwrap().is_some());
    }

    #[test]
    fn subprocess_invocation_spawns_children_automatically() {
        let f = fixture();
        let leaf = basic(&f.repo, "leaf");
        let ss = f
            .repo
            .register_state_schema(ActivityStateSchema::generic(f.repo.fresh_state_schema_id()));
        let childp = f.repo.fresh_activity_schema_id();
        let mut cb = ActivitySchemaBuilder::process(childp, "Child", ss.clone());
        let vleaf = cb.activity_var("leaf", leaf, false).unwrap();
        f.repo.register_activity_schema(cb.build().unwrap());
        let parentp = f.repo.fresh_activity_schema_id();
        let mut pb = ActivitySchemaBuilder::process(parentp, "Parent", ss);
        let vchild = pb.activity_var("child", childp, false).unwrap();
        f.repo.register_activity_schema(pb.build().unwrap());

        let pi = f.engine.start_process(parentp, None).unwrap();
        let store = f.engine.store();
        let ci = store.child_for_var(pi, vchild).unwrap().unwrap();
        assert_eq!(store.state_of(ci).unwrap(), generic::RUNNING, "auto-started");
        let li = store.child_for_var(ci, vleaf).unwrap().unwrap();
        assert_eq!(store.state_of(li).unwrap(), generic::READY);
        // Completing the grandchild completes child then parent.
        f.engine.start_activity(li, None).unwrap();
        f.engine.complete_activity(li, None).unwrap();
        assert_eq!(store.state_of(ci).unwrap(), generic::COMPLETED);
        assert_eq!(store.state_of(pi).unwrap(), generic::COMPLETED);
    }

    #[test]
    fn optional_vars_started_on_demand_only() {
        let f = fixture();
        let a = basic(&f.repo, "A");
        let lab = basic(&f.repo, "LabTest");
        let ss = f
            .repo
            .register_state_schema(ActivityStateSchema::generic(f.repo.fresh_state_schema_id()));
        let pid = f.repo.fresh_activity_schema_id();
        let mut pb = ActivitySchemaBuilder::process(pid, "P", ss);
        let va = pb.activity_var("a", a, false).unwrap();
        let vlab = pb.activity_var("lab", lab, true).unwrap();
        f.repo.register_activity_schema(pb.build().unwrap());

        let pi = f.engine.start_process(pid, None).unwrap();
        let store = f.engine.store();
        assert!(store.child_for_var(pi, vlab).unwrap().is_none());
        // Start two lab tests on demand (repeated instantiation).
        let l1 = f.engine.start_optional(pi, "lab", Some(UserId(2))).unwrap();
        let l2 = f.engine.start_optional(pi, "lab", Some(UserId(2))).unwrap();
        assert_ne!(l1, l2);
        assert_eq!(store.state_of(l1).unwrap(), generic::READY);
        // Non-optional vars cannot be started this way.
        assert!(matches!(
            f.engine.start_optional(pi, "a", None),
            Err(CoordError::NotOptional(_))
        ));
        // Parent cannot auto-complete while an optional instance is open.
        let ia = store.child_for_var(pi, va).unwrap().unwrap();
        f.engine.start_activity(ia, None).unwrap();
        f.engine.complete_activity(ia, None).unwrap();
        assert_eq!(store.state_of(pi).unwrap(), generic::RUNNING);
        f.engine.start_activity(l1, None).unwrap();
        f.engine.complete_activity(l1, None).unwrap();
        f.engine.terminate_activity(l2, None).unwrap();
        assert_eq!(store.state_of(pi).unwrap(), generic::COMPLETED);
    }

    #[test]
    fn deadline_dependency_terminates_overdue_activity() {
        let f = fixture();
        let slow = basic(&f.repo, "Slow");
        let ss = f
            .repo
            .register_state_schema(ActivityStateSchema::generic(f.repo.fresh_state_schema_id()));
        let pid = f.repo.fresh_activity_schema_id();
        let mut pb = ActivitySchemaBuilder::process(pid, "P", ss);
        let vs = pb.activity_var("slow", slow, false).unwrap();
        pb.dependency(Dependency::Deadline {
            target: vs,
            context_name: "Ctx".into(),
            field: "deadline".into(),
        });
        f.repo.register_activity_schema(pb.build().unwrap());
        f.engine.register_script(
            pid,
            generic::RUNNING,
            ActivityScript::new(
                "init",
                vec![
                    ScriptAction::CreateContext { name: "Ctx".into() },
                    ScriptAction::SetField {
                        context: "Ctx".into(),
                        field: "deadline".into(),
                        value: ScriptValue::NowPlus(Duration::from_hours(2)),
                    },
                ],
            ),
        );

        let pi = f.engine.start_process(pid, None).unwrap();
        let store = f.engine.store();
        let is = store.child_for_var(pi, vs).unwrap().unwrap();
        f.engine.start_activity(is, None).unwrap();
        // Before the deadline nothing happens.
        f.clock.advance(Duration::from_hours(1));
        assert!(f.engine.enforce_deadlines().unwrap().is_empty());
        // After the deadline the activity is terminated.
        f.clock.advance(Duration::from_hours(2));
        let t = f.engine.enforce_deadlines().unwrap();
        assert_eq!(t, vec![is]);
        assert_eq!(store.state_of(is).unwrap(), generic::TERMINATED);
        // Idempotent.
        assert!(f.engine.enforce_deadlines().unwrap().is_empty());
    }

    #[test]
    fn operations_enforce_current_state() {
        let f = fixture();
        let a = basic(&f.repo, "A");
        let ss = f
            .repo
            .register_state_schema(ActivityStateSchema::generic(f.repo.fresh_state_schema_id()));
        let pid = f.repo.fresh_activity_schema_id();
        let mut pb = ActivitySchemaBuilder::process(pid, "P", ss);
        pb.activity_var("a", a, false).unwrap();
        f.repo.register_activity_schema(pb.build().unwrap());
        let pi = f.engine.start_process(pid, None).unwrap();
        let ia = f
            .engine
            .store()
            .child_for_var(pi, f.repo.activity_schema(pid).unwrap().activity_vars()[0].id)
            .unwrap()
            .unwrap();
        // Completing before starting fails.
        assert!(matches!(
            f.engine.complete_activity(ia, None),
            Err(CoordError::WrongState { .. })
        ));
        f.engine.start_activity(ia, None).unwrap();
        assert!(matches!(
            f.engine.start_activity(ia, None),
            Err(CoordError::WrongState { .. })
        ));
        f.engine.suspend_activity(ia, None).unwrap();
        f.engine.resume_activity(ia, None).unwrap();
        f.engine.complete_activity(ia, None).unwrap();
    }

    #[test]
    fn scripts_run_on_state_entry() {
        let f = fixture();
        let ss = f
            .repo
            .register_state_schema(ActivityStateSchema::generic(f.repo.fresh_state_schema_id()));
        let pid = f.repo.fresh_activity_schema_id();
        let pb = ActivitySchemaBuilder::process(pid, "P", ss);
        f.repo.register_activity_schema(pb.build().unwrap());
        f.engine.register_script(
            pid,
            generic::RUNNING,
            ActivityScript::new(
                "init",
                vec![ScriptAction::CreateContext { name: "C".into() }],
            ),
        );
        assert_eq!(f.engine.script_count(), 1);
        let pi = f.engine.start_process(pid, None).unwrap();
        assert!(f.engine.contexts().find("C", pi).is_some());
    }
}
