//! Basic activity scripts for creating and managing context resources.
//!
//! The paper's deployment used "thirty basic activity scripts for creating
//! and managing context resources" (§7). A script is a short sequence of
//! context operations that the enactment engine runs when an instance of a
//! given activity schema enters a given state — e.g. when a task force
//! process starts Running, create its `TaskForceContext`, stamp the deadline
//! field, and create the `Leader` scoped role.

use cmi_core::context::ContextManager;
use cmi_core::error::CoreResult;
use cmi_core::ids::{ProcessInstanceId, ProcessSchemaId, UserId};
use cmi_core::participant::Directory;
use cmi_core::time::{Clock, Duration};
use cmi_core::value::Value;

/// A value computed when the script runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptValue {
    /// A literal value.
    Lit(Value),
    /// The current scenario time plus an offset — how deadline fields are
    /// stamped.
    NowPlus(Duration),
    /// The user attributed with the triggering transition (the performer),
    /// as a `Value::User`; `Null` if none.
    TriggeringUser,
}

impl ScriptValue {
    fn eval(&self, clock: &dyn Clock, user: Option<UserId>) -> Value {
        match self {
            ScriptValue::Lit(v) => v.clone(),
            ScriptValue::NowPlus(d) => Value::Time(clock.now().plus(*d)),
            ScriptValue::TriggeringUser => user.map_or(Value::Null, Value::User),
        }
    }
}

/// Who populates a scoped role created by a script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemberSource {
    /// Explicit users.
    Users(Vec<UserId>),
    /// Everyone currently playing the named organizational role.
    OrgRole(String),
    /// The user attributed with the triggering transition.
    TriggeringUser,
}

impl MemberSource {
    fn resolve(&self, directory: &Directory, user: Option<UserId>) -> Vec<UserId> {
        match self {
            MemberSource::Users(u) => u.clone(),
            MemberSource::OrgRole(name) => directory
                .role_by_name(name)
                .and_then(|r| directory.resolve(r).ok())
                .unwrap_or_default(),
            MemberSource::TriggeringUser => user.into_iter().collect(),
        }
    }
}

/// One step of a script.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScriptAction {
    /// Create a context with the given name, attached to the triggering
    /// process instance.
    CreateContext {
        /// Context name.
        name: String,
    },
    /// Set a field of the named context (found via the triggering instance).
    SetField {
        /// Context name.
        context: String,
        /// Field name.
        field: String,
        /// Value to store.
        value: ScriptValue,
    },
    /// Create a scoped role inside the named context.
    CreateRole {
        /// Context name.
        context: String,
        /// Role name.
        role: String,
        /// Initial membership.
        members: MemberSource,
    },
    /// Add a member to a scoped role.
    AddMember {
        /// Context name.
        context: String,
        /// Role name.
        role: String,
        /// Members to add.
        members: MemberSource,
    },
    /// End the named context's scope.
    DestroyContext {
        /// Context name.
        name: String,
    },
}

/// A basic activity script: a named sequence of context actions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivityScript {
    /// Script name (for the §7 inventory).
    pub name: String,
    /// The actions, run in order.
    pub actions: Vec<ScriptAction>,
}

impl ActivityScript {
    /// A new script.
    pub fn new(name: &str, actions: Vec<ScriptAction>) -> Self {
        ActivityScript {
            name: name.to_owned(),
            actions,
        }
    }

    /// Runs the script against the context store, relative to the triggering
    /// process instance. `process` is the `(schema, instance)` the created
    /// contexts attach to; `user` is the transition's attributed user.
    pub fn run(
        &self,
        contexts: &ContextManager,
        directory: &Directory,
        clock: &dyn Clock,
        process: (ProcessSchemaId, ProcessInstanceId),
        user: Option<UserId>,
    ) -> CoreResult<()> {
        let (_, instance) = process;
        // Contexts created earlier in this same script run are found by name
        // through the instance attachment, like any pre-existing context.
        let find = |contexts: &ContextManager, name: &str| {
            contexts
                .find(name, instance)
                .ok_or_else(|| cmi_core::error::CoreError::UnknownContextField {
                    context: cmi_core::ids::ContextId(0),
                    field: format!("(no live context named `{name}` attached to {instance})"),
                })
        };
        for action in &self.actions {
            match action {
                ScriptAction::CreateContext { name } => {
                    contexts.create(name, Some(process));
                }
                ScriptAction::SetField {
                    context,
                    field,
                    value,
                } => {
                    let ctx = find(contexts, context)?;
                    contexts.set_field(ctx, field, value.eval(clock, user))?;
                }
                ScriptAction::CreateRole {
                    context,
                    role,
                    members,
                } => {
                    let ctx = find(contexts, context)?;
                    contexts.create_role(ctx, role, &members.resolve(directory, user))?;
                }
                ScriptAction::AddMember {
                    context,
                    role,
                    members,
                } => {
                    let ctx = find(contexts, context)?;
                    for m in members.resolve(directory, user) {
                        contexts.add_role_member(ctx, role, m)?;
                    }
                }
                ScriptAction::DestroyContext { name } => {
                    let ctx = find(contexts, name)?;
                    contexts.destroy(ctx)?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmi_core::ids::ProcessSchemaId;
    use cmi_core::time::SimClock;
    use std::sync::Arc;

    fn setup() -> (ContextManager, Directory, SimClock) {
        let clock = SimClock::new();
        (
            ContextManager::new(Arc::new(clock.clone())),
            Directory::new(),
            clock,
        )
    }

    const PROC: (ProcessSchemaId, ProcessInstanceId) =
        (ProcessSchemaId(1), ProcessInstanceId(10));

    #[test]
    fn script_creates_context_with_deadline_and_roles() {
        let (ctxs, dir, clock) = setup();
        let alice = dir.add_user("alice");
        let bob = dir.add_user("bob");
        let epi = dir.add_role("epidemiologist").unwrap();
        dir.assign(alice, epi).unwrap();
        dir.assign(bob, epi).unwrap();
        clock.advance(Duration::from_hours(1));

        let script = ActivityScript::new(
            "init-task-force",
            vec![
                ScriptAction::CreateContext {
                    name: "TaskForceContext".into(),
                },
                ScriptAction::SetField {
                    context: "TaskForceContext".into(),
                    field: "TaskForceDeadline".into(),
                    value: ScriptValue::NowPlus(Duration::from_days(3)),
                },
                ScriptAction::CreateRole {
                    context: "TaskForceContext".into(),
                    role: "TaskForceMembers".into(),
                    members: MemberSource::OrgRole("epidemiologist".into()),
                },
                ScriptAction::CreateRole {
                    context: "TaskForceContext".into(),
                    role: "Leader".into(),
                    members: MemberSource::TriggeringUser,
                },
            ],
        );
        script.run(&ctxs, &dir, &clock, PROC, Some(alice)).unwrap();

        let ctx = ctxs.find("TaskForceContext", PROC.1).unwrap();
        let deadline = ctxs.get_field(ctx, "TaskForceDeadline").unwrap();
        assert_eq!(
            deadline.as_time().unwrap().millis(),
            Duration::from_hours(1).millis() + Duration::from_days(3).millis()
        );
        assert_eq!(
            ctxs.resolve_role(ctx, "TaskForceMembers").unwrap(),
            vec![alice, bob]
        );
        assert_eq!(ctxs.resolve_role(ctx, "Leader").unwrap(), vec![alice]);
    }

    #[test]
    fn destroy_action_ends_scope() {
        let (ctxs, dir, clock) = setup();
        let create = ActivityScript::new(
            "create",
            vec![ScriptAction::CreateContext { name: "C".into() }],
        );
        create.run(&ctxs, &dir, &clock, PROC, None).unwrap();
        let ctx = ctxs.find("C", PROC.1).unwrap();
        let destroy = ActivityScript::new(
            "destroy",
            vec![ScriptAction::DestroyContext { name: "C".into() }],
        );
        destroy.run(&ctxs, &dir, &clock, PROC, None).unwrap();
        assert!(!ctxs.is_alive(ctx));
    }

    #[test]
    fn missing_context_fails_cleanly() {
        let (ctxs, dir, clock) = setup();
        let s = ActivityScript::new(
            "bad",
            vec![ScriptAction::SetField {
                context: "Nope".into(),
                field: "f".into(),
                value: ScriptValue::Lit(Value::Int(1)),
            }],
        );
        assert!(s.run(&ctxs, &dir, &clock, PROC, None).is_err());
    }

    #[test]
    fn add_member_and_explicit_users() {
        let (ctxs, dir, clock) = setup();
        let u1 = dir.add_user("u1");
        let u2 = dir.add_user("u2");
        let s = ActivityScript::new(
            "roles",
            vec![
                ScriptAction::CreateContext { name: "C".into() },
                ScriptAction::CreateRole {
                    context: "C".into(),
                    role: "R".into(),
                    members: MemberSource::Users(vec![u1]),
                },
                ScriptAction::AddMember {
                    context: "C".into(),
                    role: "R".into(),
                    members: MemberSource::Users(vec![u2]),
                },
            ],
        );
        s.run(&ctxs, &dir, &clock, PROC, None).unwrap();
        let ctx = ctxs.find("C", PROC.1).unwrap();
        assert_eq!(ctxs.resolve_role(ctx, "R").unwrap(), vec![u1, u2]);
    }

    #[test]
    fn triggering_user_value_and_null() {
        let (ctxs, dir, clock) = setup();
        let u = dir.add_user("u");
        let s = ActivityScript::new(
            "who",
            vec![
                ScriptAction::CreateContext { name: "C".into() },
                ScriptAction::SetField {
                    context: "C".into(),
                    field: "requestor".into(),
                    value: ScriptValue::TriggeringUser,
                },
            ],
        );
        s.run(&ctxs, &dir, &clock, PROC, Some(u)).unwrap();
        let ctx = ctxs.find("C", PROC.1).unwrap();
        assert_eq!(ctxs.get_field(ctx, "requestor").unwrap(), Value::User(u));
        // Without a user the field is Null.
        s.run(&ctxs, &dir, &clock, (ProcessSchemaId(1), ProcessInstanceId(11)), None)
            .unwrap();
        let ctx2 = ctxs.find("C", ProcessInstanceId(11)).unwrap();
        assert_eq!(ctxs.get_field(ctx2, "requestor").unwrap(), Value::Null);
    }
}
