//! # cmi-coord — the Coordination Model and WfMS substrate
//!
//! The Coordination Model (CM) of CMM "provides primitives for coordinating
//! participants and for automating process enactment" (§3): operations that
//! cause the state transitions CORE declares, dependency evaluation and
//! routing, subprocess invocation, and worklists. The CMI prototype enacted
//! processes on IBM FlowMark; this crate replaces that commercial substrate
//! with a from-scratch enactment engine plus a lowering pass reproducing the
//! CMM→WfMS translation the paper reports in §7.
//!
//! * [`engine`] — the enactment engine: start/complete/suspend/resume/
//!   terminate operations, dependency routing (sequence, and-join, or-join,
//!   guard, deadline), subprocess invocation, basic activity scripts.
//! * [`worklist`] — the participant worklist with query-time role resolution
//!   (organizational and scoped).
//! * [`scripts`] — basic activity scripts creating and managing context
//!   resources (the paper's §7 inventory lists thirty of them).
//! * [`lowering`] — the CMM→WfMS translation pass.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod error;
pub mod lowering;
pub mod monitor;
pub mod scripts;
pub mod worklist;

pub use engine::{DependencyListener, DependencyStatusChange, EnactmentEngine, EngineConfig};
pub use error::{CoordError, CoordResult};
pub use lowering::{lower, lower_closure, lower_per_use, LoweredActivity, LoweringReport, WfmsStep, WfmsStepKind};
pub use monitor::{ProcessMonitor, ProcessStats};
pub use scripts::{ActivityScript, MemberSource, ScriptAction, ScriptValue};
pub use worklist::{WorkItem, Worklist};
