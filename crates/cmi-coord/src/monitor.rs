//! The process monitoring tool — the "Monitor" of the CMI Client for
//! Participants (Fig. 5), in the spirit of the WfMC process monitoring API
//! the paper contrasts with (§2).
//!
//! The monitor renders a live process instance tree with states, performers,
//! timing and attached contexts, and computes summary statistics. The paper's
//! point stands: this is the "managers monitor the entire process" view —
//! complete but undigested; the Awareness Model exists because most
//! participants need far less than this.

use std::fmt::Write as _;
use std::sync::Arc;

use cmi_core::context::ContextManager;
use cmi_core::error::CoreResult;
use cmi_core::ids::{ActivityInstanceId, ProcessInstanceId};
use cmi_core::instance::InstanceStore;
use cmi_core::state_schema::generic;

/// Summary statistics over a process instance tree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcessStats {
    /// Instances in the tree (including the root).
    pub total: usize,
    /// Instances currently open (not in a final state).
    pub open: usize,
    /// Instances in `Ready` (offered work).
    pub ready: usize,
    /// Instances in `Running`.
    pub running: usize,
    /// Instances in `Suspended`.
    pub suspended: usize,
    /// Completed instances.
    pub completed: usize,
    /// Terminated instances.
    pub terminated: usize,
}

/// The monitor client.
pub struct ProcessMonitor {
    store: Arc<InstanceStore>,
    contexts: Arc<ContextManager>,
}

impl ProcessMonitor {
    /// A monitor over the given stores.
    pub fn new(store: Arc<InstanceStore>, contexts: Arc<ContextManager>) -> Self {
        ProcessMonitor { store, contexts }
    }

    /// Computes summary statistics for the tree rooted at `root`.
    pub fn stats(&self, root: ProcessInstanceId) -> CoreResult<ProcessStats> {
        let mut stats = ProcessStats::default();
        self.walk(root, &mut |snap| {
            stats.total += 1;
            match snap.state.as_str() {
                generic::READY => {
                    stats.ready += 1;
                    stats.open += 1;
                }
                generic::RUNNING => {
                    stats.running += 1;
                    stats.open += 1;
                }
                generic::SUSPENDED => {
                    stats.suspended += 1;
                    stats.open += 1;
                }
                generic::COMPLETED => stats.completed += 1,
                generic::TERMINATED => stats.terminated += 1,
                _ => stats.open += 1, // Uninitialized / app-specific open states
            }
        })?;
        Ok(stats)
    }

    /// Renders the instance tree: name, state, performer, timing, contexts.
    pub fn render(&self, root: ProcessInstanceId) -> CoreResult<String> {
        let mut out = String::new();
        self.render_node(root, 0, &mut out)?;
        Ok(out)
    }

    fn render_node(
        &self,
        id: ActivityInstanceId,
        depth: usize,
        out: &mut String,
    ) -> CoreResult<()> {
        let snap = self.store.snapshot(id)?;
        let pad = "  ".repeat(depth);
        let _ = write!(out, "{pad}{} `{}` [{}]", snap.id, snap.schema_name, snap.state);
        if let Some(p) = snap.performer {
            let _ = write!(out, " by {p}");
        }
        let _ = write!(out, " (created {}", snap.created);
        if let Some(c) = snap.closed_at {
            let _ = write!(out, ", closed {c}");
        }
        let _ = write!(out, ")");
        for ctx in &snap.contexts {
            if let Ok(name) = self.contexts.name(*ctx) {
                let _ = write!(
                    out,
                    " ctx:{name}{}",
                    if self.contexts.is_alive(*ctx) { "" } else { "(ended)" }
                );
            }
        }
        out.push('\n');
        for child in snap.children {
            self.render_node(child, depth + 1, out)?;
        }
        Ok(())
    }

    fn walk(
        &self,
        id: ActivityInstanceId,
        f: &mut impl FnMut(&cmi_core::instance::InstanceSnapshot),
    ) -> CoreResult<()> {
        let snap = self.store.snapshot(id)?;
        f(&snap);
        for child in snap.children {
            self.walk(child, f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EnactmentEngine, EngineConfig};
    use cmi_core::participant::Directory;
    use cmi_core::repository::SchemaRepository;
    use cmi_core::schema::ActivitySchemaBuilder;
    use cmi_core::state_schema::ActivityStateSchema;
    use cmi_core::time::SimClock;

    fn setup() -> (Arc<EnactmentEngine>, Arc<SchemaRepository>) {
        let clock = SimClock::new();
        let repo = Arc::new(SchemaRepository::new());
        let store = Arc::new(InstanceStore::new(Arc::new(clock.clone()), repo.clone()));
        let contexts = Arc::new(ContextManager::new(Arc::new(clock.clone())));
        let directory = Arc::new(Directory::new());
        (
            Arc::new(EnactmentEngine::new(
                store,
                contexts,
                directory,
                Arc::new(clock),
                EngineConfig::default(),
            )),
            repo,
        )
    }

    #[test]
    fn stats_and_render_over_a_small_tree() {
        let (eng, repo) = setup();
        let ss = repo
            .register_state_schema(ActivityStateSchema::generic(repo.fresh_state_schema_id()));
        let a = repo.fresh_activity_schema_id();
        repo.register_activity_schema(
            ActivitySchemaBuilder::basic(a, "Step", ss.clone()).build().unwrap(),
        );
        let pid = repo.fresh_activity_schema_id();
        let mut pb = ActivitySchemaBuilder::process(pid, "P", ss);
        let va = pb.activity_var("one", a, false).unwrap();
        let vb = pb.activity_var("two", a, false).unwrap();
        pb.sequence(va, vb);
        repo.register_activity_schema(pb.build().unwrap());

        let pi = eng.start_process(pid, None).unwrap();
        let monitor = ProcessMonitor::new(eng.store().clone(), eng.contexts().clone());
        let s = monitor.stats(pi).unwrap();
        assert_eq!(s.total, 2, "process + first step");
        assert_eq!(s.running, 1);
        assert_eq!(s.ready, 1);
        assert_eq!(s.open, 2);

        let ia = eng.store().child_for_var(pi, va).unwrap().unwrap();
        eng.start_activity(ia, Some(cmi_core::ids::UserId(7))).unwrap();
        eng.complete_activity(ia, None).unwrap();
        let s = monitor.stats(pi).unwrap();
        assert_eq!(s.total, 3);
        assert_eq!(s.completed, 1);
        assert_eq!(s.ready, 1);

        let view = monitor.render(pi).unwrap();
        assert!(view.contains("`P` [Running]"));
        assert!(view.contains("`Step` [Completed] by u7"));
        assert!(view.lines().count() >= 3);
    }

    #[test]
    fn render_shows_contexts_and_their_liveness() {
        let (eng, repo) = setup();
        let ss = repo
            .register_state_schema(ActivityStateSchema::generic(repo.fresh_state_schema_id()));
        let pid = repo.fresh_activity_schema_id();
        repo.register_activity_schema(
            ActivitySchemaBuilder::process(pid, "P", ss).build().unwrap(),
        );
        let pi = eng.start_process(pid, None).unwrap();
        let ctx = eng.contexts().create("MissionContext", Some((pid, pi)));
        eng.store().attach_context(pi, ctx).unwrap();
        let monitor = ProcessMonitor::new(eng.store().clone(), eng.contexts().clone());
        assert!(monitor.render(pi).unwrap().contains("ctx:MissionContext"));
        eng.contexts().destroy(ctx).unwrap();
        assert!(monitor
            .render(pi)
            .unwrap()
            .contains("ctx:MissionContext(ended)"));
    }

    #[test]
    fn unknown_root_errors() {
        let (eng, _) = setup();
        let monitor = ProcessMonitor::new(eng.store().clone(), eng.contexts().clone());
        assert!(monitor.stats(ActivityInstanceId(404)).is_err());
        assert!(monitor.render(ActivityInstanceId(404)).is_err());
    }
}
