//! CMM → WfMS lowering.
//!
//! The CMI prototype enacted CMM activities by translating them into a
//! commercial WfMS (IBM FlowMark). The paper reports that "CMM activity
//! translation into the commercial WfMS used by the CMI system resulted into
//! a few hundreds of WfMS activities" from "more than fifty CMM activities"
//! (§7) — an expansion factor of roughly 4–8×, because one CMM activity needs
//! several primitive WfMS steps (role staffing, data container handling, the
//! work step itself, completion notification) plus routing nodes for
//! dependencies and script hooks.
//!
//! This module reproduces that translation as a lowering pass over activity
//! schemas, so experiment TAB7 can regenerate the paper's counts from first
//! principles rather than hard-coding them.

use std::collections::BTreeSet;

use cmi_core::ids::ActivitySchemaId;
use cmi_core::repository::SchemaRepository;
use cmi_core::schema::{ActivityKind, Dependency};

/// One primitive step of the lowered WfMS process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WfmsStep {
    /// Step name, e.g. `Interview.perform`.
    pub name: String,
    /// What kind of step it is.
    pub kind: WfmsStepKind,
}

/// Kinds of primitive WfMS steps produced by the lowering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WfmsStepKind {
    /// Resolve the performing role and assign a worklist entry.
    Staff,
    /// Move input data containers to the work step.
    FetchInputs,
    /// The user/program work step itself.
    Perform,
    /// Store output data containers.
    StoreOutputs,
    /// Signal completion to the routing layer.
    Notify,
    /// Process-level initialization (instance creation, context scripts).
    ProcessInit,
    /// A routing node evaluating one dependency.
    Route,
    /// Process-level finalization.
    ProcessFinalize,
    /// A hook step invoking a basic activity script.
    ScriptHook,
}

/// The lowered form of one CMM activity schema (not counting nested
/// subprocess schemas; see [`lower_closure`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoweredActivity {
    /// The CMM schema that was lowered.
    pub schema: ActivitySchemaId,
    /// The schema's name.
    pub name: String,
    /// The generated WfMS steps.
    pub steps: Vec<WfmsStep>,
}

impl LoweredActivity {
    /// Number of generated WfMS steps.
    pub fn step_count(&self) -> usize {
        self.steps.len()
    }
}

/// Lowers a single activity schema into its WfMS steps. `script_hooks` is
/// the number of basic activity scripts registered against the schema (each
/// becomes a hook step).
pub fn lower(
    repo: &SchemaRepository,
    schema: ActivitySchemaId,
    script_hooks: usize,
) -> cmi_core::error::CoreResult<LoweredActivity> {
    let s = repo.activity_schema(schema)?;
    let mut steps = Vec::new();
    let mut push = |name: String, kind: WfmsStepKind| steps.push(WfmsStep { name, kind });
    match s.kind() {
        ActivityKind::Basic => {
            // One staffing step if a performer is declared, data container
            // moves per input/output resource variable, the work step, and a
            // completion notification.
            if s.performer().is_some() {
                push(format!("{}.staff", s.name()), WfmsStepKind::Staff);
            }
            let inputs = s
                .resource_vars()
                .iter()
                .filter(|r| matches!(r.usage, cmi_core::resource::ResourceUsage::Input))
                .count();
            let outputs = s
                .resource_vars()
                .iter()
                .filter(|r| matches!(r.usage, cmi_core::resource::ResourceUsage::Output))
                .count();
            if inputs > 0 {
                push(format!("{}.fetch-inputs", s.name()), WfmsStepKind::FetchInputs);
            }
            push(format!("{}.perform", s.name()), WfmsStepKind::Perform);
            if outputs > 0 {
                push(format!("{}.store-outputs", s.name()), WfmsStepKind::StoreOutputs);
            }
            push(format!("{}.notify", s.name()), WfmsStepKind::Notify);
        }
        ActivityKind::Process => {
            push(format!("{}.init", s.name()), WfmsStepKind::ProcessInit);
            for (i, d) in s.dependencies().iter().enumerate() {
                let label = match d {
                    Dependency::Sequence { .. } => "seq",
                    Dependency::AndJoin { .. } => "and-join",
                    Dependency::OrJoin { .. } => "or-join",
                    Dependency::Guard { .. } => "guard",
                    Dependency::Deadline { .. } => "deadline",
                };
                push(format!("{}.route{}[{}]", s.name(), i, label), WfmsStepKind::Route);
            }
            push(format!("{}.finalize", s.name()), WfmsStepKind::ProcessFinalize);
        }
    }
    for i in 0..script_hooks {
        push(format!("{}.script{}", s.name(), i), WfmsStepKind::ScriptHook);
    }
    Ok(LoweredActivity {
        schema,
        name: s.name().to_owned(),
        steps,
    })
}

/// Summary of lowering a whole schema closure.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LoweringReport {
    /// Every lowered activity.
    pub activities: Vec<LoweredActivity>,
}

impl LoweringReport {
    /// Total CMM activities lowered.
    pub fn cmm_activity_count(&self) -> usize {
        self.activities.len()
    }

    /// Total WfMS steps generated.
    pub fn wfms_step_count(&self) -> usize {
        self.activities.iter().map(LoweredActivity::step_count).sum()
    }

    /// Expansion factor (WfMS steps per CMM activity).
    pub fn expansion_factor(&self) -> f64 {
        if self.activities.is_empty() {
            return 0.0;
        }
        self.wfms_step_count() as f64 / self.cmm_activity_count() as f64
    }
}

/// Lowers each root process and every schema *use* reachable through
/// activity variables, expanding shared schemas once **per use** — the way
/// the FlowMark translation inlined a CMM activity into each process
/// template that referenced it. This is the count behind the paper's "more
/// than fifty CMM activities … resulted into a few hundreds of WfMS
/// activities" (§7); [`lower_closure`] is the deduplicated variant.
pub fn lower_per_use(
    repo: &SchemaRepository,
    roots: &[ActivitySchemaId],
    script_count_for: impl Fn(ActivitySchemaId) -> usize + Copy,
) -> cmi_core::error::CoreResult<LoweringReport> {
    fn go(
        repo: &SchemaRepository,
        id: ActivitySchemaId,
        script_count_for: impl Fn(ActivitySchemaId) -> usize + Copy,
        path: &mut Vec<ActivitySchemaId>,
        report: &mut LoweringReport,
    ) -> cmi_core::error::CoreResult<()> {
        if path.contains(&id) {
            return Ok(()); // defensive: break recursive schema references
        }
        path.push(id);
        report.activities.push(lower(repo, id, script_count_for(id))?);
        let schema = repo.activity_schema(id)?;
        for var in schema.activity_vars() {
            go(repo, var.schema, script_count_for, path, report)?;
        }
        path.pop();
        Ok(())
    }
    let mut report = LoweringReport::default();
    let mut path = Vec::new();
    for &root in roots {
        go(repo, root, script_count_for, &mut path, &mut report)?;
    }
    Ok(report)
}

/// Lowers a process schema and every schema transitively reachable through
/// its activity variables. `script_count_for` reports how many scripts are
/// registered for a schema.
pub fn lower_closure(
    repo: &SchemaRepository,
    roots: &[ActivitySchemaId],
    script_count_for: impl Fn(ActivitySchemaId) -> usize,
) -> cmi_core::error::CoreResult<LoweringReport> {
    let mut seen: BTreeSet<ActivitySchemaId> = BTreeSet::new();
    let mut stack: Vec<ActivitySchemaId> = roots.to_vec();
    let mut report = LoweringReport::default();
    while let Some(id) = stack.pop() {
        if !seen.insert(id) {
            continue;
        }
        let schema = repo.activity_schema(id)?;
        for var in schema.activity_vars() {
            stack.push(var.schema);
        }
        report.activities.push(lower(repo, id, script_count_for(id))?);
    }
    report.activities.sort_by_key(|a| a.schema);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmi_core::resource::ResourceUsage;
    use cmi_core::roles::RoleSpec;
    use cmi_core::schema::ActivitySchemaBuilder;
    use cmi_core::state_schema::ActivityStateSchema;

    fn repo() -> SchemaRepository {
        SchemaRepository::new()
    }

    fn states(r: &SchemaRepository) -> std::sync::Arc<ActivityStateSchema> {
        r.register_state_schema(ActivityStateSchema::generic(r.fresh_state_schema_id()))
    }

    #[test]
    fn basic_activity_lowers_to_staffed_pipeline() {
        let r = repo();
        let ss = states(&r);
        let id = r.fresh_activity_schema_id();
        r.register_activity_schema(
            ActivitySchemaBuilder::basic(id, "Interview", ss)
                .performed_by(RoleSpec::org("doctor"))
                .resource_var("notes", r.fresh_resource_schema_id(), ResourceUsage::Input)
                .resource_var("report", r.fresh_resource_schema_id(), ResourceUsage::Output)
                .build()
                .unwrap(),
        );
        let l = lower(&r, id, 0).unwrap();
        let kinds: Vec<WfmsStepKind> = l.steps.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                WfmsStepKind::Staff,
                WfmsStepKind::FetchInputs,
                WfmsStepKind::Perform,
                WfmsStepKind::StoreOutputs,
                WfmsStepKind::Notify
            ]
        );
    }

    #[test]
    fn minimal_basic_activity_is_two_steps() {
        let r = repo();
        let ss = states(&r);
        let id = r.fresh_activity_schema_id();
        r.register_activity_schema(ActivitySchemaBuilder::basic(id, "T", ss).build().unwrap());
        let l = lower(&r, id, 0).unwrap();
        assert_eq!(l.step_count(), 2); // perform + notify
    }

    #[test]
    fn process_lowering_counts_dependencies_and_scripts() {
        let r = repo();
        let ss = states(&r);
        let a = r.fresh_activity_schema_id();
        r.register_activity_schema(
            ActivitySchemaBuilder::basic(a, "A", ss.clone()).build().unwrap(),
        );
        let pid = r.fresh_activity_schema_id();
        let mut pb = ActivitySchemaBuilder::process(pid, "P", ss);
        let va = pb.activity_var("a", a, false).unwrap();
        let vb = pb.activity_var("b", a, false).unwrap();
        pb.sequence(va, vb);
        r.register_activity_schema(pb.build().unwrap());
        let l = lower(&r, pid, 2).unwrap();
        // init + 1 route + finalize + 2 script hooks
        assert_eq!(l.step_count(), 5);
        assert!(l.steps.iter().any(|s| s.name.contains("route0[seq]")));
    }

    #[test]
    fn closure_reaches_nested_schemas_once() {
        let r = repo();
        let ss = states(&r);
        let leaf = r.fresh_activity_schema_id();
        r.register_activity_schema(
            ActivitySchemaBuilder::basic(leaf, "Leaf", ss.clone()).build().unwrap(),
        );
        let child = r.fresh_activity_schema_id();
        let mut cb = ActivitySchemaBuilder::process(child, "Child", ss.clone());
        cb.activity_var("l", leaf, false).unwrap();
        r.register_activity_schema(cb.build().unwrap());
        let parent = r.fresh_activity_schema_id();
        let mut pb = ActivitySchemaBuilder::process(parent, "Parent", ss);
        pb.activity_var("c1", child, false).unwrap();
        pb.activity_var("c2", child, false).unwrap(); // same schema twice
        r.register_activity_schema(pb.build().unwrap());

        let report = lower_closure(&r, &[parent], |_| 0).unwrap();
        assert_eq!(report.cmm_activity_count(), 3, "each schema lowered once");
        assert!(report.wfms_step_count() >= 6);
        assert!(report.expansion_factor() >= 2.0);
    }

    #[test]
    fn empty_report_factor_is_zero() {
        let report = LoweringReport::default();
        assert_eq!(report.expansion_factor(), 0.0);
    }
}
