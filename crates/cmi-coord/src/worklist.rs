//! The worklist — the traditional WfMS client view (§6.1's "variant of the
//! traditional WfMS worklist").
//!
//! A work item is a `Ready` activity instance offered to the members of the
//! performing role its schema declares. Role resolution happens **at query
//! time** against the directory (organizational roles) or the live contexts
//! of the enclosing process instance (scoped roles), so membership changes
//! are reflected immediately. Claiming a work item starts the activity with
//! the claimant as performer; the engine rejects claims by users who do not
//! currently play the required role.

use std::sync::Arc;

use cmi_core::ids::{ActivityInstanceId, UserId};
use cmi_core::roles::RoleSpec;
use cmi_core::state_schema::generic;

use crate::engine::EnactmentEngine;
use crate::error::{CoordError, CoordResult};

/// One entry in a participant's worklist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkItem {
    /// The `Ready` activity instance.
    pub instance: ActivityInstanceId,
    /// The activity schema's name.
    pub activity: String,
    /// The performing role requirement, rendered.
    pub role: String,
}

/// Query-time worklist over an enactment engine.
pub struct Worklist {
    engine: Arc<EnactmentEngine>,
}

impl Worklist {
    /// A worklist view over `engine`.
    pub fn new(engine: Arc<EnactmentEngine>) -> Self {
        Worklist { engine }
    }

    /// The work items currently offered to `user`: every `Ready` basic
    /// activity whose performer role `user` plays right now. Activities with
    /// no performer declaration are offered to everyone.
    pub fn for_user(&self, user: UserId) -> CoordResult<Vec<WorkItem>> {
        let store = self.engine.store();
        let mut items = Vec::new();
        for id in store.all_instances() {
            if !store.is_within(id, generic::READY).unwrap_or(false) {
                continue;
            }
            let schema = store.schema_of(id)?;
            if schema.is_process() {
                continue; // subprocesses are engine-started, not claimed
            }
            let eligible = match schema.performer() {
                None => true,
                Some(spec) => self.user_plays(user, spec, id)?,
            };
            if eligible {
                items.push(WorkItem {
                    instance: id,
                    activity: schema.name().to_owned(),
                    role: schema
                        .performer()
                        .map_or_else(|| "(anyone)".to_owned(), ToString::to_string),
                });
            }
        }
        Ok(items)
    }

    /// All outstanding (`Ready`) work items regardless of user — the
    /// supervisor view.
    pub fn all_open(&self) -> CoordResult<Vec<WorkItem>> {
        let store = self.engine.store();
        let mut items = Vec::new();
        for id in store.all_instances() {
            if !store.is_within(id, generic::READY).unwrap_or(false) {
                continue;
            }
            let schema = store.schema_of(id)?;
            if schema.is_process() {
                continue;
            }
            items.push(WorkItem {
                instance: id,
                activity: schema.name().to_owned(),
                role: schema
                    .performer()
                    .map_or_else(|| "(anyone)".to_owned(), ToString::to_string),
            });
        }
        Ok(items)
    }

    /// Claims and starts a work item as `user`. Fails if the user does not
    /// play the required role at claim time.
    pub fn claim(&self, user: UserId, instance: ActivityInstanceId) -> CoordResult<()> {
        let store = self.engine.store();
        let schema = store.schema_of(instance)?;
        if let Some(spec) = schema.performer() {
            if !self.user_plays(user, spec, instance)? {
                return Err(CoordError::NotAuthorized {
                    instance,
                    role: spec.to_string(),
                });
            }
        }
        self.engine.start_activity(instance, Some(user))
    }

    /// Completes a previously claimed (`Running`) work item as `user`.
    /// Rejects completion by anyone but the recorded performer — remote
    /// worklist clients complete items over the wire, so the authorization
    /// check must live server-side, not in the client UI.
    pub fn complete(&self, user: UserId, instance: ActivityInstanceId) -> CoordResult<()> {
        let snap = self.engine.store().snapshot(instance)?;
        if let Some(performer) = snap.performer {
            if performer != user {
                return Err(CoordError::NotAuthorized {
                    instance,
                    role: format!("performer {performer}"),
                });
            }
        }
        self.engine.complete_activity(instance, Some(user))
    }

    fn user_plays(
        &self,
        user: UserId,
        spec: &RoleSpec,
        instance: ActivityInstanceId,
    ) -> CoordResult<bool> {
        match spec {
            RoleSpec::Org(name) => Ok(self
                .engine
                .directory()
                .role_by_name(name)
                .is_some_and(|r| self.engine.directory().plays(user, r))),
            RoleSpec::Scoped { context_name, role } => {
                // Scoped roles live in a context attached to the enclosing
                // process instance (or, transitively, an ancestor).
                let store = self.engine.store();
                let mut cursor = store.snapshot(instance)?.parent;
                while let Some((_, pi)) = cursor {
                    if let Some(ctx) = self.engine.contexts().find(context_name, pi) {
                        return Ok(self.engine.contexts().plays_scoped(ctx, role, user));
                    }
                    cursor = store.snapshot(pi)?.parent;
                }
                Ok(false)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::scripts::{ActivityScript, MemberSource, ScriptAction};
    use cmi_core::context::ContextManager;
    use cmi_core::instance::InstanceStore;
    use cmi_core::participant::Directory;
    use cmi_core::repository::SchemaRepository;
    use cmi_core::schema::ActivitySchemaBuilder;
    use cmi_core::state_schema::ActivityStateSchema;
    use cmi_core::time::SimClock;

    fn engine() -> (Arc<EnactmentEngine>, Arc<SchemaRepository>) {
        let clock = SimClock::new();
        let repo = Arc::new(SchemaRepository::new());
        let store = Arc::new(InstanceStore::new(Arc::new(clock.clone()), repo.clone()));
        let contexts = Arc::new(ContextManager::new(Arc::new(clock.clone())));
        let directory = Arc::new(Directory::new());
        (
            Arc::new(EnactmentEngine::new(
                store,
                contexts,
                directory,
                Arc::new(clock),
                EngineConfig::default(),
            )),
            repo,
        )
    }

    #[test]
    fn org_role_worklist_offer_and_claim() {
        let (eng, repo) = engine();
        let u1 = eng.directory().add_user("alice");
        let u2 = eng.directory().add_user("bob");
        let doc = eng.directory().add_role("doctor").unwrap();
        eng.directory().assign(u1, doc).unwrap();

        let ss = repo
            .register_state_schema(ActivityStateSchema::generic(repo.fresh_state_schema_id()));
        let aid = repo.fresh_activity_schema_id();
        repo.register_activity_schema(
            ActivitySchemaBuilder::basic(aid, "Interview", ss.clone())
                .performed_by(RoleSpec::org("doctor"))
                .build()
                .unwrap(),
        );
        let pid = repo.fresh_activity_schema_id();
        let mut pb = ActivitySchemaBuilder::process(pid, "P", ss);
        pb.activity_var("interview", aid, false).unwrap();
        repo.register_activity_schema(pb.build().unwrap());

        eng.start_process(pid, None).unwrap();
        let wl = Worklist::new(eng.clone());
        assert_eq!(wl.for_user(u1).unwrap().len(), 1);
        assert!(wl.for_user(u2).unwrap().is_empty());
        assert_eq!(wl.all_open().unwrap().len(), 1);

        let item = wl.for_user(u1).unwrap()[0].clone();
        assert_eq!(item.activity, "Interview");
        assert_eq!(item.role, "doctor");
        // Wrong user cannot claim.
        assert!(matches!(
            wl.claim(u2, item.instance),
            Err(CoordError::NotAuthorized { .. })
        ));
        wl.claim(u1, item.instance).unwrap();
        assert!(wl.for_user(u1).unwrap().is_empty(), "started items leave list");
        assert_eq!(
            eng.store().snapshot(item.instance).unwrap().performer,
            Some(u1)
        );
    }

    #[test]
    fn scoped_role_worklist_resolves_through_parent_contexts() {
        let (eng, repo) = engine();
        let leader = eng.directory().add_user("lead");
        let other = eng.directory().add_user("other");

        let ss = repo
            .register_state_schema(ActivityStateSchema::generic(repo.fresh_state_schema_id()));
        let aid = repo.fresh_activity_schema_id();
        repo.register_activity_schema(
            ActivitySchemaBuilder::basic(aid, "ApproveReport", ss.clone())
                .performed_by(RoleSpec::scoped("TaskForceContext", "Leader"))
                .build()
                .unwrap(),
        );
        let pid = repo.fresh_activity_schema_id();
        let mut pb = ActivitySchemaBuilder::process(pid, "TaskForce", ss);
        pb.activity_var("approve", aid, false).unwrap();
        repo.register_activity_schema(pb.build().unwrap());
        eng.register_script(
            pid,
            generic::RUNNING,
            ActivityScript::new(
                "init",
                vec![
                    ScriptAction::CreateContext {
                        name: "TaskForceContext".into(),
                    },
                    ScriptAction::CreateRole {
                        context: "TaskForceContext".into(),
                        role: "Leader".into(),
                        members: MemberSource::Users(vec![leader]),
                    },
                ],
            ),
        );

        let pi = eng.start_process(pid, None).unwrap();
        let wl = Worklist::new(eng.clone());
        assert_eq!(wl.for_user(leader).unwrap().len(), 1);
        assert!(wl.for_user(other).unwrap().is_empty());

        // Scoped role membership changes are reflected at query time.
        let ctx = eng.contexts().find("TaskForceContext", pi).unwrap();
        eng.contexts()
            .add_role_member(ctx, "Leader", other)
            .unwrap();
        assert_eq!(wl.for_user(other).unwrap().len(), 1);
        // Ending the scope removes the offer entirely.
        eng.contexts().destroy(ctx).unwrap();
        assert!(wl.for_user(leader).unwrap().is_empty());
    }

    #[test]
    fn activities_without_performer_offered_to_everyone() {
        let (eng, repo) = engine();
        let u = eng.directory().add_user("anyone");
        let ss = repo
            .register_state_schema(ActivityStateSchema::generic(repo.fresh_state_schema_id()));
        let aid = repo.fresh_activity_schema_id();
        repo.register_activity_schema(
            ActivitySchemaBuilder::basic(aid, "OpenTask", ss.clone())
                .build()
                .unwrap(),
        );
        let pid = repo.fresh_activity_schema_id();
        let mut pb = ActivitySchemaBuilder::process(pid, "P", ss);
        pb.activity_var("t", aid, false).unwrap();
        repo.register_activity_schema(pb.build().unwrap());
        eng.start_process(pid, None).unwrap();
        let wl = Worklist::new(eng.clone());
        let items = wl.for_user(u).unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].role, "(anyone)");
        wl.claim(u, items[0].instance).unwrap();
    }
}
