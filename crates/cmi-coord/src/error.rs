//! Errors raised by the coordination engine.

use std::fmt;

use cmi_core::error::CoreError;
use cmi_core::ids::ActivityInstanceId;

/// Errors from enactment operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordError {
    /// An underlying CORE model error.
    Core(CoreError),
    /// The operation requires the instance to be in a different state.
    WrongState {
        /// The instance.
        instance: ActivityInstanceId,
        /// Its current state.
        state: String,
        /// What the operation needed.
        needed: &'static str,
    },
    /// Tried to start an optional activity variable that is not declared
    /// optional, or vice versa.
    NotOptional(String),
    /// A work item was claimed by a user who does not play the required role.
    NotAuthorized {
        /// The instance being claimed.
        instance: ActivityInstanceId,
        /// The role requirement, rendered.
        role: String,
    },
}

impl fmt::Display for CoordError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoordError::Core(e) => write!(f, "{e}"),
            CoordError::WrongState {
                instance,
                state,
                needed,
            } => write!(f, "{instance} is in state `{state}`, operation needs {needed}"),
            CoordError::NotOptional(v) => {
                write!(f, "activity variable `{v}` is not optional; it is flow-scheduled")
            }
            CoordError::NotAuthorized { instance, role } => {
                write!(f, "claiming {instance} requires playing role {role}")
            }
        }
    }
}

impl std::error::Error for CoordError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoordError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for CoordError {
    fn from(e: CoreError) -> Self {
        CoordError::Core(e)
    }
}

/// Convenience alias.
pub type CoordResult<T> = Result<T, CoordError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoordError::Core(CoreError::UnknownState("X".into()));
        assert_eq!(e.to_string(), "unknown state `X`");
        assert!(std::error::Error::source(&e).is_some());
        let w = CoordError::WrongState {
            instance: ActivityInstanceId(3),
            state: "Closed".into(),
            needed: "Running",
        };
        assert!(w.to_string().contains("ai3"));
    }
}
