//! # CMI — The Collaboration Management Infrastructure
//!
//! A Rust reproduction of the CMI system (Baker, Georgakopoulos, Schuster,
//! Cassandra, Cichocki — MCC; CoopIS'99 / ICDE 2000): collaboration process
//! management with **customized process and situation awareness**.
//!
//! CMI couples a workflow-style process model (the Collaboration Management
//! Model, CMM) with a composite-event awareness engine. Its distinguishing
//! ideas:
//!
//! * **Scoped roles** — roles created dynamically inside *context resources*,
//!   visible only within the context's scope and alive only as long as it is
//!   (e.g. `task force leader`, `requestor`).
//! * **Awareness schemas** `AS_P = (AD_P, R_P, RA_P)` — a composite-event
//!   specification (what happened), an awareness delivery role (who should
//!   hear about it; possibly scoped), and a role assignment (which subset
//!   actually receives it). Roles are resolved **at detection time**.
//! * **Process-aware event operators** — filters, `And`/`Seq`/`Or`, `Count`,
//!   `Compare1`/`Compare2` and the process-invocation `Translate`, all
//!   replicated per process instance so events never mix across instances.
//!
//! ## Quickstart
//!
//! ```
//! use cmi::prelude::*;
//!
//! // Boot a server; register a one-step process schema.
//! let server = CmiServer::new();
//! let repo = server.repository();
//! let states = repo.register_state_schema(ActivityStateSchema::generic(
//!     repo.fresh_state_schema_id(),
//! ));
//! let step = repo.fresh_activity_schema_id();
//! repo.register_activity_schema(
//!     ActivitySchemaBuilder::basic(step, "WriteReport", states.clone())
//!         .build()
//!         .unwrap(),
//! );
//! let pid = repo.fresh_activity_schema_id();
//! let mut pb = ActivitySchemaBuilder::process(pid, "Mission", states);
//! pb.activity_var("report", step, false).unwrap();
//! repo.register_activity_schema(pb.build().unwrap());
//!
//! // An awareness schema, written in the specification language: tell the
//! // watch officers when a mission closes.
//! let officer = server.directory().add_user("officer");
//! let watch = server.directory().add_role("watch-officer").unwrap();
//! server.directory().assign(officer, watch).unwrap();
//! server
//!     .load_awareness_source(
//!         r#"awareness "mission-closed" on Mission {
//!                done = process_filter(Completed|Terminated)
//!                deliver done to org(watch-officer)
//!            }"#,
//!     )
//!     .unwrap();
//!
//! // Enact the process; the notification arrives as it completes.
//! let pi = server.coordination().start_process(pid, None).unwrap();
//! let work = server.worklist().all_open().unwrap();
//! server.coordination().start_activity(work[0].instance, Some(officer)).unwrap();
//! server.coordination().complete_activity(work[0].instance, Some(officer)).unwrap();
//! assert!(server.store().is_closed(pi).unwrap());
//! assert_eq!(server.awareness().queue().pending_for(officer), 1);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`core`] (`cmi-core`) | CMM CORE: state schemas, activity schemas, resources, contexts, scoped roles |
//! | [`events`] (`cmi-events`) | CEDMOS-style composite event detection |
//! | [`coord`] (`cmi-coord`) | enactment engine, worklist, scripts, WfMS lowering |
//! | [`awareness`] (`cmi-awareness`) | awareness schemas, DSL, delivery, persistent queues, `CmiServer` |
//! | [`baselines`] (`cmi-baselines`) | related-work comparators + relevance metrics |
//! | [`service`] (`cmi-service`) | Service Model: providers, QoS, agreements, violation awareness |
//! | [`net`] (`cmi-net`) | Fig. 5 client/server split: wire protocol, TCP/loopback transports, session server, typed remote clients |
//! | [`fed`] (`cmi-fed`) | multi-node federation: rendezvous-partitioned instances, cross-node awareness routing, directory gossip |
//! | [`obs`] (`cmi-obs`) | observability: lock-free metrics registry, causal detection tracing, flight recorder |
//! | [`workloads`] (`cmi-workloads`) | paper scenarios and synthetic workloads |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use cmi_awareness as awareness;
pub use cmi_baselines as baselines;
pub use cmi_coord as coord;
pub use cmi_core as core;
pub use cmi_events as events;
pub use cmi_fed as fed;
pub use cmi_net as net;
pub use cmi_obs as obs;
pub use cmi_service as service;
pub use cmi_workloads as workloads;

/// The commonly needed types in one import.
pub mod prelude {
    pub use cmi_awareness::assignment::RoleAssignment;
    pub use cmi_awareness::builder::AwarenessSchemaBuilder;
    pub use cmi_awareness::queue::{DeliveryQueue, Notification, Priority};
    pub use cmi_awareness::render::render_schema;
    pub use cmi_awareness::system::CmiServer;
    pub use cmi_awareness::viewer::{AwarenessViewer, DigestEntry};
    pub use cmi_core::context::ContextManager;
    pub use cmi_core::ids::*;
    pub use cmi_core::participant::{Directory, ParticipantKind};
    pub use cmi_core::roles::{RoleRef, RoleSpec};
    pub use cmi_core::schema::{ActivityKind, ActivitySchemaBuilder, Dependency};
    pub use cmi_core::state_schema::{generic, ActivityStateSchema, ActivityStateSchemaBuilder};
    pub use cmi_core::time::{Clock, Duration, SimClock, Timestamp};
    pub use cmi_core::value::{Value, ValueType};
    pub use cmi_coord::engine::{EnactmentEngine, EngineConfig};
    pub use cmi_coord::scripts::{ActivityScript, MemberSource, ScriptAction, ScriptValue};
    pub use cmi_coord::worklist::Worklist;
    pub use cmi_coord::monitor::{ProcessMonitor, ProcessStats};
    pub use cmi_events::operator::CmpOp;
    pub use cmi_net::client::{
        ClientConfig, ClientStats, Connection, MonitorClient, ServerTelemetry, ViewerClient,
        WorklistClient,
    };
    pub use cmi_fed::{ClusterConfig, FedConfig, FedNode, NodeSpec};
    pub use cmi_net::server::{NetConfig, NetServer, NetStats};
    pub use cmi_obs::{MetricsSnapshot, ObsRegistry};
    pub use cmi_service::{QualityOfService, SelectionPolicy, ServiceEngine};
}
